#include "testkit/oracles.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <utility>

#include "core/parser.hpp"
#include "core/validation.hpp"
#include "serve/cluster.hpp"
#include "serve/ring.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace seqrtg::testkit {

namespace {

namespace fs = std::filesystem;

/// RAII scratch directory for the governed leg's durable store. A
/// process-wide counter keeps shrink probes (each opens a fresh store)
/// from colliding with each other or with scenario scratch dirs.
struct ScratchDir {
  fs::path path;
  ScratchDir() {
    static std::atomic<std::uint64_t> next{0};
    path = fs::temp_directory_path() /
           ("seqrtg_oracle_" + std::to_string(::getpid()) + "_" +
            std::to_string(next.fetch_add(1)));
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

MiningResult mine_with_threads(const std::vector<core::LogRecord>& records,
                               const core::EngineOptions& opts,
                               std::size_t threads) {
  core::EngineOptions engine_opts = opts;
  engine_opts.threads = threads;
  store::PatternStore store;
  core::Engine engine(&store, engine_opts);
  const core::BatchReport report = engine.analyze_by_service(records);
  MiningResult out;
  out.canonical = canonical_patterns(store);
  out.records = report.records;
  out.matched_existing = report.matched_existing;
  out.analyzed = report.analyzed;
  out.new_patterns = report.new_patterns;
  return out;
}

}  // namespace

MiningResult mine_engine(const std::vector<core::LogRecord>& records,
                         const core::EngineOptions& opts) {
  return mine_with_threads(records, opts, 1);
}

MiningResult mine_partitioned(const std::vector<core::LogRecord>& records,
                              const core::EngineOptions& opts,
                              std::size_t threads) {
  return mine_with_threads(records, opts, threads < 2 ? 2 : threads);
}

MiningResult mine_serve(const std::vector<core::LogRecord>& records,
                        const core::EngineOptions& opts,
                        const ServeConfig& config) {
  store::PatternStore local;
  store::PatternStore* store =
      config.store != nullptr ? config.store : &local;
  // Virtual time pinned to the engine paths' now_unix; it never advances,
  // so the interval flush never fires and each lane flushes exactly once
  // when the drain closes its queue — the deterministic streaming shape
  // the differential oracle compares against.
  util::ManualClock manual(opts.now_unix);

  serve::ServeOptions serve_opts;
  serve_opts.engine = opts;
  serve_opts.port = -1;
  serve_opts.http_port = -1;
  serve_opts.lanes = config.lanes;
  serve_opts.queue_capacity = records.size() + 1;
  serve_opts.overflow = util::OverflowPolicy::kDrop;
  serve_opts.batch_size = records.size() + 1;
  serve_opts.flush_interval_s = 1e9;
  serve_opts.checkpoint_on_stop = false;
  serve_opts.clock = config.clock != nullptr ? config.clock : &manual;
  serve_opts.queue_fault = config.queue_fault;
  serve_opts.governor = config.governor;

  serve::Server server(store, serve_opts);
  const bool governed =
      config.governor.ceiling_bytes > 0 || config.misaccount_fault;
  if (config.misaccount_fault) {
    server.accountant()->set_fault_hook(config.misaccount_fault);
  }
  MiningResult out;
  std::string error;
  if (!server.start(&error)) {
    out.started = false;
    out.canonical = "serve failed to start: " + error;
    return out;
  }
  std::string stream;
  for (const core::LogRecord& record : records) {
    stream += core::record_to_json(record);
    stream += '\n';
  }
  std::istringstream in(stream);
  server.feed(in);
  const serve::ServeReport report = server.stop();

  out.records = report.processed;
  out.matched_existing = report.matched_existing;
  out.new_patterns = report.new_patterns;
  out.accepted = report.accepted;
  out.processed = report.processed;
  out.dropped = report.dropped;
  out.batches = report.batches;
  if (governed) {
    const core::Governor::Stats stats = server.governor()->stats();
    out.shed = report.shed;
    out.spills = stats.spills;
    out.reloads = stats.reloads;
    // Post-drain ledger audit against the store's authoritative byte
    // recount — canonical equality cannot see a skewed ledger (spill is
    // output-transparent); this can. MUST run before the canonical
    // rendering below: canonical's load_service read path reloads spilled
    // partitions, and with the governor already detached by stop() those
    // reloads are (correctly) unaccounted — auditing after it would report
    // every such partition as untracked.
    out.audit = server.accountant()
                    ->audit(store->recount_partition_bytes())
                    .value_or("");
  }
  out.canonical = canonical_patterns(*store);
  return out;
}

MiningResult mine_cluster(const std::vector<core::LogRecord>& records,
                          const core::EngineOptions& opts,
                          const ClusterConfig& config) {
  const std::size_t nodes = config.nodes == 0 ? 1 : config.nodes;
  MiningResult out;

  // Predict each node's record count by evaluating the SAME pure routing
  // function the router will apply (ring hash + scripted misroute). The
  // prediction is the drain barrier: a node is only stopped after its
  // cluster transport has delivered everything addressed to it, which
  // closes the race between the router's last write and the node's drain.
  const serve::HashRing ring(nodes, config.vnodes);
  std::vector<std::uint64_t> expected(nodes, 0);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::size_t shard = ring.shard_for(records[i].service);
    if (config.route_fault && config.route_fault(i)) {
      shard = (shard + 1) % nodes;
    }
    ++expected[shard];
  }

  // Same determinism recipe as mine_serve, shared across all nodes: one
  // pinned ManualClock (thread-safe), batches larger than the corpus, so
  // every lane flushes exactly once at drain.
  util::ManualClock manual(opts.now_unix);
  std::vector<std::unique_ptr<store::PatternStore>> stores;
  std::vector<std::unique_ptr<serve::ClusterNode>> cluster;
  for (std::size_t n = 0; n < nodes; ++n) {
    stores.push_back(std::make_unique<store::PatternStore>());
    serve::ClusterNodeOptions node_opts;
    node_opts.serve.engine = opts;
    node_opts.serve.port = -1;
    node_opts.serve.http_port = -1;
    node_opts.serve.lanes = config.lanes;
    node_opts.serve.queue_capacity = records.size() + 1;
    node_opts.serve.overflow = util::OverflowPolicy::kDrop;
    node_opts.serve.batch_size = records.size() + 1;
    node_opts.serve.flush_interval_s = 1e9;
    node_opts.serve.checkpoint_on_stop = false;
    node_opts.serve.clock = &manual;
    node_opts.cluster_port = 0;
    node_opts.node_id = "node-" + std::to_string(n);
    cluster.push_back(std::make_unique<serve::ClusterNode>(
        stores[n].get(), std::move(node_opts)));
    std::string error;
    if (!cluster.back()->start(&error)) {
      out.started = false;
      out.canonical = "cluster node " + std::to_string(n) +
                      " failed to start: " + error;
      for (auto& node : cluster) node->stop();
      return out;
    }
  }

  serve::RouterOptions router_opts;
  for (const auto& node : cluster) {
    router_opts.shards.push_back(node->cluster_port());
  }
  router_opts.port = -1;
  router_opts.http_port = -1;
  router_opts.vnodes = config.vnodes;
  router_opts.route_fault = config.route_fault;
  serve::Router router(std::move(router_opts));
  std::string error;
  if (!router.start(&error)) {
    out.started = false;
    out.canonical = "cluster router failed to start: " + error;
    for (auto& node : cluster) node->stop();
    return out;
  }

  std::string stream;
  for (const core::LogRecord& record : records) {
    stream += core::record_to_json(record);
    stream += '\n';
  }
  std::istringstream in(stream);
  router.feed(in);
  // stop() closes every shard link; the FIN is each node's end-of-stream.
  const serve::RouterReport routed = router.stop();
  out.forwarded = routed.forwarded;
  out.undeliverable = routed.undeliverable;

  std::vector<core::PatternRepository*> repos;
  for (std::size_t n = 0; n < nodes; ++n) {
    serve::ClusterNode& node = *cluster[n];
    node.wait_until([&node, want = expected[n]] {
      return node.stats().records >= want;
    });
    const serve::ServeReport report = node.stop();
    out.records += report.processed;
    out.accepted += report.accepted;
    out.processed += report.processed;
    out.dropped += report.dropped;
    out.batches += report.batches;
    out.new_patterns += report.new_patterns;
    out.matched_existing += report.matched_existing;
    repos.push_back(stores[n].get());
  }
  out.canonical = canonical_patterns_merged(repos);
  return out;
}

OracleVerdict check_differential(const std::vector<core::LogRecord>& records,
                                 const core::EngineOptions& opts,
                                 const DifferentialOptions& dopts) {
  const MiningResult engine = mine_engine(records, opts);
  const MiningResult partitioned =
      mine_partitioned(records, opts, dopts.threads);
  if (engine.canonical != partitioned.canonical) {
    return OracleFailure{
        "differential:engine-vs-partitioned",
        first_diff(engine.canonical, partitioned.canonical)};
  }

  ServeConfig config;
  config.lanes = dopts.lanes;
  config.queue_fault = dopts.serve_queue_fault;
  const MiningResult served = mine_serve(records, opts, config);
  if (!served.started) {
    return OracleFailure{"differential:serve-start", served.canonical};
  }
  // Accounting first: a dropped duplicate message can leave the pattern
  // TEXTS identical and only shift a match count, so the exact-count check
  // is what makes an injected overflow undeniable.
  if (served.accepted != records.size() || served.dropped != 0 ||
      served.processed != served.accepted) {
    std::ostringstream detail;
    detail << "serve accounting diverged: fed=" << records.size()
           << " accepted=" << served.accepted
           << " processed=" << served.processed
           << " dropped=" << served.dropped;
    return OracleFailure{"differential:serve-accounting", detail.str()};
  }
  if (engine.canonical != served.canonical) {
    return OracleFailure{"differential:engine-vs-serve",
                         first_diff(engine.canonical, served.canonical)};
  }

  if (dopts.cluster_nodes > 0) {
    ClusterConfig cluster;
    cluster.nodes = dopts.cluster_nodes;
    cluster.route_fault = dopts.cluster_route_fault;
    const MiningResult clustered = mine_cluster(records, opts, cluster);
    if (!clustered.started) {
      return OracleFailure{"differential:cluster-start",
                           clustered.canonical};
    }
    // A misrouted record is still forwarded (to the wrong shard) and
    // still processed, so the accounting stays green and only the merged
    // canonical betrays it — exactly the division of labour the
    // single-node leg has between accounting and canonical checks.
    if (clustered.forwarded != records.size() ||
        clustered.undeliverable != 0 ||
        clustered.accepted != clustered.forwarded ||
        clustered.processed != clustered.accepted ||
        clustered.dropped != 0) {
      std::ostringstream detail;
      detail << "cluster accounting diverged: fed=" << records.size()
             << " forwarded=" << clustered.forwarded
             << " undeliverable=" << clustered.undeliverable
             << " accepted=" << clustered.accepted
             << " processed=" << clustered.processed
             << " dropped=" << clustered.dropped;
      return OracleFailure{"differential:cluster-accounting", detail.str()};
    }
    if (engine.canonical != clustered.canonical) {
      return OracleFailure{"differential:engine-vs-cluster",
                           first_diff(engine.canonical,
                                      clustered.canonical)};
    }
  }

  if (dopts.memlimit_bytes > 0 || dopts.governed_misaccount) {
    ScratchDir scratch;
    store::PatternStore durable;
    if (!durable.open(scratch.path.string())) {
      return OracleFailure{
          "governance:store",
          "cannot open scratch store directory " + scratch.path.string()};
    }
    ServeConfig governed_config;
    governed_config.lanes = dopts.lanes;
    governed_config.store = &durable;
    governed_config.governor.ceiling_bytes =
        dopts.memlimit_bytes > 0
            ? static_cast<std::size_t>(dopts.memlimit_bytes)
            : static_cast<std::size_t>(kDefaultGovernedCeiling);
    governed_config.misaccount_fault = dopts.governed_misaccount;
    const MiningResult governed =
        mine_serve(records, opts, governed_config);
    if (!governed.started) {
      return OracleFailure{"governance:serve-start", governed.canonical};
    }
    // Admission runs before any lane flushes in this harness, so a
    // governed run that sheds (or drops) anything is a bug, not load.
    if (governed.accepted != records.size() || governed.dropped != 0 ||
        governed.shed != 0 || governed.processed != governed.accepted) {
      std::ostringstream detail;
      detail << "governed serve accounting diverged: fed="
             << records.size() << " accepted=" << governed.accepted
             << " processed=" << governed.processed
             << " dropped=" << governed.dropped
             << " shed=" << governed.shed;
      return OracleFailure{"governance:accounting", detail.str()};
    }
    // The headline claim: spill thrash must not change what gets mined.
    if (engine.canonical != governed.canonical) {
      return OracleFailure{"differential:engine-vs-governed",
                           first_diff(engine.canonical,
                                      governed.canonical)};
    }
    if (!governed.audit.empty()) {
      return OracleFailure{"governance:audit", governed.audit};
    }
  }
  return std::nullopt;
}

OracleVerdict check_soundness(const std::vector<core::LogRecord>& records,
                              const core::EngineOptions& opts) {
  core::EngineOptions engine_opts = opts;
  engine_opts.threads = 1;
  store::PatternStore store;
  core::Engine engine(&store, engine_opts);
  engine.analyze_by_service(records);

  core::Parser parser(engine_opts.scanner, engine_opts.special);
  for (const std::string& service : store.services()) {
    for (const core::Pattern& p : store.load_service(service)) {
      parser.add_pattern(p);
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!parser.parse(records[i].service, records[i].message).has_value()) {
      std::ostringstream detail;
      detail << "record " << i << " (service " << records[i].service
             << ") is not matched by any pattern mined from its own "
                "corpus: "
             << records[i].message;
      return OracleFailure{"soundness", detail.str()};
    }
  }
  return std::nullopt;
}

OracleVerdict check_idempotence(const std::vector<core::LogRecord>& records,
                                const core::EngineOptions& opts) {
  core::EngineOptions engine_opts = opts;
  engine_opts.threads = 1;
  store::PatternStore store;
  core::Engine engine(&store, engine_opts);
  engine.analyze_by_service(records);
  // Counts legitimately grow on the second pass; the texts must not.
  const std::string before =
      canonical_patterns(store, /*include_match_counts=*/false);

  const core::BatchReport again = engine.analyze_by_service(records);
  if (again.new_patterns != 0 || again.analyzed != 0 ||
      again.matched_existing != records.size()) {
    std::ostringstream detail;
    detail << "second analysis of an already-mined corpus was not a pure "
              "parse pass: analyzed="
           << again.analyzed << " new_patterns=" << again.new_patterns
           << " matched_existing=" << again.matched_existing << " of "
           << records.size() << " records";
    return OracleFailure{"idempotence", detail.str()};
  }
  const std::string after =
      canonical_patterns(store, /*include_match_counts=*/false);
  if (before != after) {
    return OracleFailure{"idempotence", first_diff(before, after)};
  }
  return std::nullopt;
}

OracleVerdict check_evolution(const std::vector<core::LogRecord>& records,
                              const core::EngineOptions& opts,
                              const core::EvolutionOptions& evolution) {
  core::EngineOptions engine_opts = opts;
  engine_opts.threads = 1;
  core::SketchRegistry sketches;
  engine_opts.sketches = &sketches;
  store::PatternStore store;
  core::Engine engine(&store, engine_opts);
  engine.analyze_by_service(records);
  // The second pass is a pure parse pass (idempotence oracle); it feeds
  // every record through the parse-first matcher and thus into the value
  // sketches — the match-time evidence re-specialisation needs.
  engine.analyze_by_service(records);

  // Which records the mined set parses — evolution must not lose any of
  // them (records the MINED set already missed are soundness's problem,
  // not evolution's).
  const auto build_parser = [&](core::Parser& parser) {
    for (const std::string& service : store.services()) {
      for (const core::Pattern& p : store.load_service(service)) {
        parser.add_pattern(p);
      }
    }
  };
  std::vector<bool> parsed_before(records.size(), false);
  {
    core::Parser before(engine_opts.scanner, engine_opts.special);
    build_parser(before);
    for (std::size_t i = 0; i < records.size(); ++i) {
      parsed_before[i] =
          before.parse(records[i].service, records[i].message).has_value();
    }
  }

  core::EvolutionOptions eopts = evolution;
  eopts.scanner = engine_opts.scanner;
  eopts.special = engine_opts.special;
  eopts.example_cap = engine_opts.analyzer.example_cap;
  core::evolve_repository(store, &sketches, eopts);

  core::Parser after(engine_opts.scanner, engine_opts.special);
  build_parser(after);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!parsed_before[i]) continue;
    if (!after.parse(records[i].service, records[i].message).has_value()) {
      std::ostringstream detail;
      detail << "record " << i << " (service " << records[i].service
             << ") parsed before the evolution pass but not after: "
             << records[i].message;
      return OracleFailure{"evolution:coverage", detail.str()};
    }
  }
  for (const std::string& service : store.services()) {
    const core::ValidationReport report = core::validate_patterns(
        store.load_service(service), engine_opts.scanner,
        engine_opts.special);
    if (!report.ok()) {
      const core::PatternConflict& c = report.conflicts.front();
      std::ostringstream detail;
      detail << "evolved set of service " << service
             << " is not conflict-free: pattern " << c.pattern_id
             << " example matched "
             << (c.matched_id.empty() ? "<nothing>" : c.matched_id) << ": "
             << c.example;
      return OracleFailure{"evolution:conflict", detail.str()};
    }
  }
  return std::nullopt;
}

OracleVerdict check_interleave_invariance(
    const std::vector<core::LogRecord>& records,
    const core::EngineOptions& opts, std::uint64_t seed) {
  // Split into per-service queues (service order preserved), then merge
  // them back with a seeded weighted pick — a uniform random interleave
  // among the order-preserving ones.
  std::vector<std::string> service_names;
  std::vector<std::vector<const core::LogRecord*>> queues;
  for (const core::LogRecord& record : records) {
    std::size_t slot = 0;
    while (slot < service_names.size() &&
           service_names[slot] != record.service) {
      ++slot;
    }
    if (slot == service_names.size()) {
      service_names.push_back(record.service);
      queues.emplace_back();
    }
    queues[slot].push_back(&record);
  }

  util::Rng rng(seed);
  std::vector<std::size_t> next(queues.size(), 0);
  std::vector<core::LogRecord> shuffled;
  shuffled.reserve(records.size());
  std::size_t remaining = records.size();
  while (remaining > 0) {
    std::uint64_t pick = rng.next_below(remaining);
    for (std::size_t q = 0; q < queues.size(); ++q) {
      const std::size_t left = queues[q].size() - next[q];
      if (pick < left) {
        shuffled.push_back(*queues[q][next[q]++]);
        break;
      }
      pick -= left;
    }
    --remaining;
  }

  const MiningResult base = mine_engine(records, opts);
  const MiningResult permuted = mine_engine(shuffled, opts);
  if (base.canonical != permuted.canonical) {
    return OracleFailure{"interleave-invariance",
                         first_diff(base.canonical, permuted.canonical)};
  }
  return std::nullopt;
}

}  // namespace seqrtg::testkit
