# Empty dependencies file for parser_matching.
# This may be replaced when dependencies are built.
