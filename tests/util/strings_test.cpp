#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace seqrtg::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespace, DropsEmptyRuns) {
  const auto parts = split_whitespace("  a \t b\n  c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, AllWhitespace) {
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  // Non-ASCII bytes pass through unchanged.
  EXPECT_EQ(to_lower("\xC3\x89"), "\xC3\x89");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(ends_with("hello world", "world"));
  EXPECT_FALSE(ends_with("world", "hello world"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Classifiers, Digits) {
  EXPECT_TRUE(is_all_digits("0123456789"));
  EXPECT_FALSE(is_all_digits("123a"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_TRUE(has_digit("abc1"));
  EXPECT_FALSE(has_digit("abc"));
}

TEST(Classifiers, Alpha) {
  EXPECT_TRUE(is_all_alpha("abcXYZ"));
  EXPECT_FALSE(is_all_alpha("ab1"));
  EXPECT_FALSE(is_all_alpha(""));
  EXPECT_TRUE(has_alpha("123x"));
  EXPECT_FALSE(has_alpha("123"));
}

TEST(Classifiers, Hex) {
  EXPECT_TRUE(is_all_hex("deadBEEF09"));
  EXPECT_FALSE(is_all_hex("xyz"));
  EXPECT_FALSE(is_all_hex(""));
  EXPECT_TRUE(is_hex_digit('a'));
  EXPECT_TRUE(is_hex_digit('F'));
  EXPECT_FALSE(is_hex_digit('g'));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(replace_all("a@b@c", "@", "@@"), "a@@b@@c");
  EXPECT_EQ(replace_all("aaa", "a", "b"), "bbb");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("abc", "", "y"), "abc");
}

TEST(ReplaceAll, NoInfiniteLoopWhenToContainsFrom) {
  EXPECT_EQ(replace_all("a", "a", "aa"), "aa");
}

TEST(XmlEscape, AllSpecials) {
  EXPECT_EQ(xml_escape("<a b=\"c\" d='e'>&</a>"),
            "&lt;a b=&quot;c&quot; d=&apos;e&apos;&gt;&amp;&lt;/a&gt;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(CountOccurrences, Basics) {
  EXPECT_EQ(count_occurrences("a.b.c", "."), 2u);
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);  // non-overlapping
  EXPECT_EQ(count_occurrences("abc", ""), 0u);
  EXPECT_EQ(count_occurrences("", "x"), 0u);
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3u * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace seqrtg::util
