#include "core/fsm_hex.hpp"

#include <gtest/gtest.h>

#include <string>

namespace seqrtg::core {
namespace {

TEST(Mac, ColonSeparated) {
  EXPECT_EQ(match_mac("00:0a:95:9d:68:16"), 17u);
  EXPECT_EQ(match_mac("AA:BB:CC:DD:EE:FF"), 17u);
}

TEST(Mac, DashSeparated) {
  EXPECT_EQ(match_mac("00-0a-95-9d-68-16"), 17u);
}

TEST(Mac, AllDigitGroups) {
  // Digit-only MACs are still MACs, not times.
  EXPECT_EQ(match_mac("00:11:22:33:44:55"), 17u);
}

TEST(Mac, RejectsMixedSeparators) {
  EXPECT_EQ(match_mac("00:0a-95:9d:68:16"), 0u);
}

TEST(Mac, RejectsShortOrLongChains) {
  EXPECT_EQ(match_mac("00:0a:95:9d:68"), 0u);        // five groups
  EXPECT_EQ(match_mac("00:0a:95:9d:68:16:aa"), 0u);  // seven groups
}

TEST(Mac, RejectsNonHexDigits) {
  EXPECT_EQ(match_mac("00:0a:95:9g:68:16"), 0u);
}

TEST(Mac, RejectsGluedSuffix) {
  EXPECT_EQ(match_mac("00:0a:95:9d:68:16ab"), 0u);
}

TEST(Mac, AcceptsTrailingPunctuation) {
  EXPECT_EQ(match_mac("00:0a:95:9d:68:16,"), 17u);
}

TEST(Ipv6, FullForm) {
  const std::string a = "2001:0db8:85a3:0000:0000:8a2e:0370:7334";
  EXPECT_EQ(match_ipv6(a), a.size());
}

TEST(Ipv6, CompressedForms) {
  EXPECT_EQ(match_ipv6("fe80::1"), 7u);
  EXPECT_EQ(match_ipv6("::1"), 3u);
  const std::string b = "2001:db8::8a2e:370:7334";
  EXPECT_EQ(match_ipv6(b), b.size());
}

TEST(Ipv6, Ipv4MappedTail) {
  const std::string a = "::ffff:192.168.0.1";
  EXPECT_EQ(match_ipv6(a), a.size());
}

TEST(Ipv6, RejectsTimes) {
  // Times must not be mistaken for IPv6 (both are colon-separated).
  EXPECT_EQ(match_ipv6("06:25:56"), 0u);
  EXPECT_EQ(match_ipv6("06:25:56:444"), 0u);
}

TEST(Ipv6, RejectsOversizedGroups) {
  EXPECT_EQ(match_ipv6("2001:0db8x5a3::1"), 0u);
  EXPECT_EQ(match_ipv6("20011:db8::1"), 0u);
}

TEST(Ipv6, RejectsTripleColon) {
  EXPECT_EQ(match_ipv6("2001:::1"), 0u);
}

TEST(Hex, ZeroXPrefixed) {
  EXPECT_EQ(match_hex("0x1f"), 4u);
  EXPECT_EQ(match_hex("0xDEADBEEF"), 10u);
  EXPECT_EQ(match_hex("0x"), 0u);  // prefix without digits
}

TEST(Hex, BareRunNeedsDigitAndLetter) {
  EXPECT_EQ(match_hex("7d5f03e2"), 8u);
  EXPECT_EQ(match_hex("deadbeef01"), 10u);
  EXPECT_EQ(match_hex("12345678"), 0u);   // digits only: an integer
  EXPECT_EQ(match_hex("abcdefab"), 0u);   // letters only: a word
}

TEST(Hex, BareRunMinimumLength) {
  EXPECT_EQ(match_hex("7d5f03"), 0u);          // below default length 8
  EXPECT_EQ(match_hex("7d5f03", 6), 6u);       // custom minimum
}

TEST(Hex, RejectsGluedIdentifier) {
  EXPECT_EQ(match_hex("7d5f03e2xyz"), 0u);
  EXPECT_EQ(match_hex("0x1fzz"), 0u);
}

TEST(Hex, SessionIdsFromZookeeper) {
  EXPECT_EQ(match_hex("0x14f05578bd80001"), 17u);
}

}  // namespace
}  // namespace seqrtg::core
