// Structural assertions swept over all 16 LogHub-like datasets: the
// properties the evaluation relies on must hold for every bank, not just
// the ones spot-checked elsewhere.
#include <gtest/gtest.h>

#include <set>

#include "core/scanner.hpp"
#include "loggen/corpus.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace seqrtg::loggen {
namespace {

class CorpusSweep : public ::testing::TestWithParam<const char*> {
 protected:
  eval::LabeledCorpus corpus(std::size_t n = 600) const {
    return generate_corpus(*find_dataset(GetParam()), n,
                           util::kDefaultSeed);
  }
};

TEST_P(CorpusSweep, ParallelArraysAligned) {
  const auto c = corpus();
  EXPECT_EQ(c.messages.size(), c.preprocessed.size());
  EXPECT_EQ(c.messages.size(), c.event_ids.size());
  EXPECT_EQ(c.name, GetParam());
}

TEST_P(CorpusSweep, NoEmptyMessages) {
  for (const std::string& m : corpus().messages) {
    EXPECT_FALSE(util::trim(m).empty());
  }
}

TEST_P(CorpusSweep, EventLabelsAreDenseFromE1) {
  const auto c = corpus(2000);
  std::set<std::string> labels(c.event_ids.begin(), c.event_ids.end());
  // E1 must exist (rank-1 of the Zipf) and labels never exceed the bank.
  EXPECT_TRUE(labels.count("E1")) << GetParam();
  EXPECT_LE(labels.size(), find_dataset(GetParam())->events.size());
}

TEST_P(CorpusSweep, RawMessagesCarryTheHeader) {
  // Raw is strictly longer than pre-processed (header + real values).
  const auto c = corpus();
  std::size_t raw_total = 0;
  std::size_t pre_total = 0;
  for (std::size_t i = 0; i < c.messages.size(); ++i) {
    raw_total += c.messages[i].size();
    pre_total += c.preprocessed[i].size();
  }
  EXPECT_GT(raw_total, pre_total);
}

TEST_P(CorpusSweep, NoUnexpandedPlaceholders) {
  // A stray "{kind}" in the output means a template typo: the expander
  // emits unknown placeholders verbatim precisely so this test catches
  // them. Literal braces in real formats are written as text, never in
  // "{word}" shape.
  const auto c = corpus(2000);
  for (const std::string& m : c.messages) {
    for (const char* kind :
         {"{int", "{float", "{hex", "{ip", "{word", "{alnum", "{path",
          "{host", "{email", "{url", "{user", "{dur", "{blk", "{uuid",
          "{intstar", "{oneof", "{opt", "{intlist", "{ts_", "{port",
          "{pid", "{mac"}) {
      EXPECT_EQ(m.find(kind), std::string::npos)
          << GetParam() << ": " << m;
    }
  }
}

TEST_P(CorpusSweep, ScannerTerminatesOnEveryMessage) {
  const core::Scanner scanner;
  for (const std::string& m : corpus().messages) {
    const auto tokens = scanner.scan(m);
    EXPECT_FALSE(tokens.empty()) << m;
    EXPECT_LE(tokens.size(), 513u);
  }
}

TEST_P(CorpusSweep, PreprocessedVariantHasNoRawValues) {
  // Spot property: the pre-processed text of a message must not contain
  // IPv4-shaped tokens (they were all replaced by <*>).
  const auto c = corpus();
  for (const std::string& p : c.preprocessed) {
    for (const auto chunk : util::split_whitespace(p)) {
      // Strip trailing punctuation before testing the shape.
      std::string_view body = chunk;
      while (!body.empty() &&
             (body.back() == ',' || body.back() == ')' ||
              body.back() == ']')) {
        body.remove_suffix(1);
      }
      if (body.size() >= 7 && util::count_occurrences(body, ".") == 3) {
        bool all_numeric_quads = true;
        for (const auto q : util::split(body, '.')) {
          if (!util::is_all_digits(q)) all_numeric_quads = false;
        }
        EXPECT_FALSE(all_numeric_quads)
            << GetParam() << ": raw IPv4 leaked into pre-processed: "
            << chunk;
      }
    }
  }
}

TEST_P(CorpusSweep, SameSeedSameCorpusAcrossProcessLifetimes) {
  // Regenerating twice within one process must be bit-identical (the
  // benches rely on this for reproducibility of every table).
  const auto a = corpus(200);
  const auto b = corpus(200);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.event_ids, b.event_ids);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, CorpusSweep,
    ::testing::Values("HDFS", "Hadoop", "Spark", "Zookeeper", "OpenStack",
                      "BGL", "HPC", "Thunderbird", "Windows", "Linux",
                      "Mac", "Android", "HealthApp", "Apache", "OpenSSH",
                      "Proxifier"));

}  // namespace
}  // namespace seqrtg::loggen
