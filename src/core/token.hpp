// Token model for the Sequence scanner.
//
// The seminal Sequence scanner classifies tokens in a single pass using three
// finite state machines (paper §III): one for hexadecimal-family tokens (MAC
// addresses, IPv6), one for date/time stamps, and one for "all of the text
// and number types". The full inventory of scan-time types is: Time, IPv4,
// IPv6, MAC address, Integer, Float, URL, or Literal.
//
// Sequence-RTG adds the `is_space_before` property (extension #3): the
// scanner records whether the original message had whitespace before each
// token so patterns can be reconstructed byte-exactly, which is what makes
// the exported patterns usable by external parsers (syslog-ng patterndb,
// Grok).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seqrtg::core {

/// Scan-time and analysis-time token types.
///
/// Literal..Url are produced by the scanner. Email/Host/KeyValue are special
/// types detected during the analysis phase (paper §III: "Some other special
/// types are also detected during the analysis phase, i.e. key/value pairs,
/// email addresses, and host names"). String is the analyser's generic
/// variable for merged literal positions. Rest is the multi-line marker that
/// instructs the parser to ignore all remaining text (extension #6).
enum class TokenType : std::uint8_t {
  Literal,
  Integer,
  Float,
  Hex,
  Time,
  IPv4,
  IPv6,
  Mac,
  Url,
  // Analysis-time types:
  Email,
  Host,
  Path,
  String,
  Rest,
};

/// Canonical lowercase tag for a type, as it appears inside %...% variables.
std::string_view token_type_tag(TokenType t);

/// Inverse of token_type_tag; returns Literal for unknown tags.
TokenType token_type_from_tag(std::string_view tag);

/// True for types that represent a variable (everything except Literal).
bool is_variable_type(TokenType t);

/// A single scanned token.
struct Token {
  TokenType type = TokenType::Literal;
  /// Original text of the token, exactly as it appeared in the message.
  std::string value;
  /// RTG extension #3: true when the character preceding this token in the
  /// original message was whitespace.
  bool is_space_before = false;
  /// When the token is the value part of a key=value pair, the key text
  /// (used for semantic variable naming at analysis time); empty otherwise.
  std::string key;

  bool operator==(const Token& other) const {
    return type == other.type && value == other.value &&
           is_space_before == other.is_space_before && key == other.key;
  }
};

/// Reconstructs the original message text from a token sequence, honouring
/// is_space_before. This must be the exact inverse of scanning (tested as a
/// property over all corpora).
std::string reconstruct(const std::vector<Token>& tokens);

}  // namespace seqrtg::core
