#include "core/fsm_hex.hpp"

#include "util/strings.hpp"

namespace seqrtg::core {

namespace {

using util::is_alnum;
using util::is_digit;
using util::is_hex_digit;

bool boundary(std::string_view text, std::size_t pos) {
  return pos >= text.size() || !is_alnum(text[pos]);
}

/// Counts leading hex digits (at most `cap`).
std::size_t hex_run(std::string_view text, std::size_t pos, std::size_t cap) {
  std::size_t n = 0;
  while (n < cap && pos + n < text.size() && is_hex_digit(text[pos + n])) ++n;
  return n;
}

}  // namespace

std::size_t match_mac(std::string_view text) {
  // Six groups of exactly two hex digits, uniform separator ':' or '-'.
  if (text.size() < 17) return 0;
  const char sep = text[2];
  if (sep != ':' && sep != '-') return 0;
  for (int g = 0; g < 6; ++g) {
    const std::size_t base = static_cast<std::size_t>(g) * 3;
    if (!is_hex_digit(text[base]) || !is_hex_digit(text[base + 1])) return 0;
    if (g < 5 && text[base + 2] != sep) return 0;
  }
  if (!boundary(text, 17)) return 0;
  // Reject when a seventh group follows (it is a longer hex chain, not MAC).
  if (text.size() >= 18 && text[17] == sep && text.size() >= 19 &&
      is_hex_digit(text[18])) {
    return 0;
  }
  return 17;
}

std::size_t match_ipv6(std::string_view text) {
  // Scan the maximal run of characters that can belong to an IPv6 literal.
  std::size_t end = 0;
  while (end < text.size() &&
         (is_hex_digit(text[end]) || text[end] == ':' || text[end] == '.')) {
    ++end;
  }
  if (end < 3) return 0;
  // Trailing ':' or '.' belongs to surrounding punctuation, not the address
  // (except a genuine "::" suffix like "fe80::").
  while (end > 0 && (text[end - 1] == '.' ||
                     (text[end - 1] == ':' &&
                      !(end >= 2 && text[end - 2] == ':')))) {
    --end;
  }
  const std::string_view cand = text.substr(0, end);

  std::size_t colons = 0;
  bool has_double = false;
  for (std::size_t i = 0; i < cand.size(); ++i) {
    if (cand[i] == ':') {
      ++colons;
      if (i + 1 < cand.size() && cand[i + 1] == ':') has_double = true;
      // ":::" is never valid.
      if (i + 2 < cand.size() && cand[i + 1] == ':' && cand[i + 2] == ':') {
        return 0;
      }
    }
  }
  // At most one "::" compression.
  if (util::count_occurrences(cand, "::") > 1) return 0;
  // Structural gate: full addresses have 7 colons; compressed ones have "::".
  // Requiring >= 4 colons otherwise keeps "06:25:56" out of this FSM.
  if (!has_double && colons != 7) {
    if (colons < 4) return 0;
  }
  if (colons < 2) return 0;

  // Validate the groups: 1-4 hex digits, or empty only adjacent to "::";
  // an optional dotted-quad tail is allowed in the last group.
  const auto groups = util::split(cand, ':');
  if (groups.size() > 9) return 0;
  int empty_groups = 0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::string_view g = groups[i];
    if (g.empty()) {
      ++empty_groups;
      continue;
    }
    if (i == groups.size() - 1 && g.find('.') != std::string_view::npos) {
      // IPv4-mapped tail, e.g. ::ffff:192.168.0.1 — validated loosely.
      const auto quads = util::split(g, '.');
      if (quads.size() != 4) return 0;
      for (const auto q : quads) {
        if (!util::is_all_digits(q) || q.size() > 3) return 0;
      }
      continue;
    }
    if (g.size() > 4) return 0;
    for (char c : g) {
      if (!is_hex_digit(c)) return 0;
    }
  }
  // "::" produces at most 2 empty fields at the edges / 1 inside; more means
  // malformed (e.g. ":::").
  if (empty_groups > 2) return 0;
  if (!boundary(text, end)) return 0;
  return end;
}

std::size_t match_hex(std::string_view text, std::size_t min_bare_len) {
  // 0x-prefixed.
  if (text.size() >= 3 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    const std::size_t run = hex_run(text, 2, text.size());
    if (run > 0 && boundary(text, 2 + run)) return 2 + run;
    return 0;
  }
  // Bare hex run: must be long enough and mix digits with a-f letters, so
  // that decimal integers and common words are excluded.
  const std::size_t run = hex_run(text, 0, text.size());
  if (run < min_bare_len || !boundary(text, run)) return 0;
  bool saw_digit = false;
  bool saw_letter = false;
  for (std::size_t i = 0; i < run; ++i) {
    if (is_digit(text[i])) {
      saw_digit = true;
    } else {
      saw_letter = true;
    }
  }
  return (saw_digit && saw_letter) ? run : 0;
}

}  // namespace seqrtg::core
