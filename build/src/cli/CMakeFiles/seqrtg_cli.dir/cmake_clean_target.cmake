file(REMOVE_RECURSE
  "libseqrtg_cli.a"
)
