#include "store/database.hpp"

#include <algorithm>
#include <fstream>

#include "store/sql.hpp"
#include "util/strings.hpp"

namespace seqrtg::store {

namespace {

/// Resolves a literal-or-placeholder item against the bound parameters.
bool resolve_item(const InsertStmt::Item& item,
                  const std::vector<Value>& params, Value* out,
                  std::string* error) {
  if (!item.is_placeholder) {
    *out = item.literal;
    return true;
  }
  if (item.placeholder_index >= params.size()) {
    *error = "not enough bound parameters";
    return false;
  }
  *out = params[item.placeholder_index];
  return true;
}

bool resolve_where(const std::vector<WhereClause>& where,
                   const std::vector<Value>& params,
                   std::vector<std::pair<std::string, Value>>* out,
                   std::string* error) {
  for (const WhereClause& clause : where) {
    InsertStmt::Item item;
    item.is_placeholder = clause.is_placeholder;
    item.placeholder_index = clause.placeholder_index;
    item.literal = clause.literal;
    Value v;
    if (!resolve_item(item, params, &v, error)) return false;
    out->emplace_back(clause.column, std::move(v));
  }
  return true;
}

/// Rows of `table` satisfying every equality clause. The first clause that
/// hits an index (or the primary key) seeds the candidate set.
std::vector<RowId> filter_rows(
    const Table& table,
    const std::vector<std::pair<std::string, Value>>& clauses,
    std::string* error) {
  if (clauses.empty()) return table.all_rows();
  for (const auto& [column, value] : clauses) {
    if (table.schema().column_index(column) < 0) {
      *error = "unknown column " + column + " in WHERE";
      return {};
    }
  }
  std::vector<RowId> candidates =
      table.find_eq(clauses.front().first, clauses.front().second);
  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row& row = table.row(id);
    bool match = true;
    for (std::size_t i = 1; i < clauses.size(); ++i) {
      const int col = table.schema().column_index(clauses[i].first);
      if (!(row[static_cast<std::size_t>(col)] == clauses[i].second)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(id);
  }
  return out;
}

}  // namespace

bool Database::has_table(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

const Table* Database::table(std::string_view name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

QueryResult Database::exec(std::string_view sql,
                           const std::vector<Value>& params) {
  QueryResult result;
  std::string error;
  const auto stmt = sql_parse(sql, &error);
  if (!stmt.has_value()) {
    result.error = error;
    return result;
  }
  if (stmt->placeholder_count > params.size()) {
    result.error = "statement needs " +
                   std::to_string(stmt->placeholder_count) +
                   " parameters, got " + std::to_string(params.size());
    return result;
  }

  switch (stmt->kind) {
    case SqlStatement::Kind::CreateTable: {
      const auto& ct = stmt->create_table;
      if (has_table(ct.table)) {
        result.error = "table " + ct.table + " already exists";
        return result;
      }
      Schema schema;
      for (const auto& [name, type] : ct.columns) {
        schema.columns.push_back({name, type});
      }
      schema.primary_key = ct.primary_key;
      tables_.emplace(ct.table, Table(std::move(schema)));
      return result;
    }
    case SqlStatement::Kind::CreateIndex: {
      const auto it = tables_.find(stmt->create_index.table);
      if (it == tables_.end()) {
        result.error = "no such table " + stmt->create_index.table;
        return result;
      }
      if (!it->second.add_index(stmt->create_index.column)) {
        result.error = "no such column " + stmt->create_index.column;
      }
      return result;
    }
    case SqlStatement::Kind::Insert: {
      const auto it = tables_.find(stmt->insert.table);
      if (it == tables_.end()) {
        result.error = "no such table " + stmt->insert.table;
        return result;
      }
      Table& table = it->second;
      if (stmt->insert.values.size() != table.schema().columns.size()) {
        result.error = "value count does not match column count";
        return result;
      }
      Row row;
      row.reserve(stmt->insert.values.size());
      for (const auto& item : stmt->insert.values) {
        Value v;
        if (!resolve_item(item, params, &v, &result.error)) return result;
        row.push_back(std::move(v));
      }
      if (!table.insert(std::move(row))) {
        result.error = "primary key violation";
        return result;
      }
      result.affected = 1;
      return result;
    }
    case SqlStatement::Kind::Select: {
      const auto it = tables_.find(stmt->select.table);
      if (it == tables_.end()) {
        result.error = "no such table " + stmt->select.table;
        return result;
      }
      const Table& table = it->second;
      const auto& sel = stmt->select;

      std::vector<int> proj;
      if (sel.star) {
        for (std::size_t i = 0; i < table.schema().columns.size(); ++i) {
          proj.push_back(static_cast<int>(i));
          result.columns.push_back(table.schema().columns[i].name);
        }
      } else {
        for (const std::string& col : sel.columns) {
          const int idx = table.schema().column_index(col);
          if (idx < 0) {
            result.error = "unknown column " + col;
            return result;
          }
          proj.push_back(idx);
          result.columns.push_back(col);
        }
      }

      std::vector<std::pair<std::string, Value>> clauses;
      if (!resolve_where(sel.where, params, &clauses, &result.error)) {
        return result;
      }
      std::vector<RowId> ids = filter_rows(table, clauses, &result.error);
      if (!result.error.empty()) return result;

      if (!sel.order_by.empty()) {
        const int order_col = table.schema().column_index(sel.order_by);
        if (order_col < 0) {
          result.error = "unknown ORDER BY column " + sel.order_by;
          return result;
        }
        std::stable_sort(ids.begin(), ids.end(), [&](RowId a, RowId b) {
          const Value& va = table.row(a)[static_cast<std::size_t>(order_col)];
          const Value& vb = table.row(b)[static_cast<std::size_t>(order_col)];
          return sel.order_desc ? vb < va : va < vb;
        });
      }
      if (sel.limit >= 0 &&
          ids.size() > static_cast<std::size_t>(sel.limit)) {
        ids.resize(static_cast<std::size_t>(sel.limit));
      }

      result.rows.reserve(ids.size());
      for (RowId id : ids) {
        const Row& row = table.row(id);
        Row projected;
        projected.reserve(proj.size());
        for (int col : proj) {
          projected.push_back(row[static_cast<std::size_t>(col)]);
        }
        result.rows.push_back(std::move(projected));
      }
      return result;
    }
    case SqlStatement::Kind::Update: {
      const auto it = tables_.find(stmt->update.table);
      if (it == tables_.end()) {
        result.error = "no such table " + stmt->update.table;
        return result;
      }
      Table& table = it->second;
      const auto& upd = stmt->update;

      std::vector<std::pair<int, Value>> sets;
      for (const auto& [col, item] : upd.sets) {
        const int idx = table.schema().column_index(col);
        if (idx < 0) {
          result.error = "unknown column " + col;
          return result;
        }
        Value v;
        if (!resolve_item(item, params, &v, &result.error)) return result;
        sets.emplace_back(idx, std::move(v));
      }
      std::vector<std::pair<std::string, Value>> clauses;
      if (!resolve_where(upd.where, params, &clauses, &result.error)) {
        return result;
      }
      const std::vector<RowId> ids = filter_rows(table, clauses,
                                                 &result.error);
      if (!result.error.empty()) return result;
      for (RowId id : ids) {
        Row row = table.row(id);
        for (const auto& [col, value] : sets) {
          row[static_cast<std::size_t>(col)] = value;
        }
        if (!table.update_row(id, std::move(row))) {
          result.error = "primary key violation on update";
          return result;
        }
        ++result.affected;
      }
      return result;
    }
    case SqlStatement::Kind::Delete: {
      const auto it = tables_.find(stmt->del.table);
      if (it == tables_.end()) {
        result.error = "no such table " + stmt->del.table;
        return result;
      }
      Table& table = it->second;
      std::vector<std::pair<std::string, Value>> clauses;
      if (!resolve_where(stmt->del.where, params, &clauses, &result.error)) {
        return result;
      }
      const std::vector<RowId> ids = filter_rows(table, clauses,
                                                 &result.error);
      if (!result.error.empty()) return result;
      for (RowId id : ids) {
        table.erase(id);
        ++result.affected;
      }
      return result;
    }
  }
  result.error = "unreachable";
  return result;
}

bool Database::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "seqrtgdb 1\n";
  for (const auto& [name, table] : tables_) {
    const Schema& schema = table.schema();
    out << "table " << name << ' ' << schema.columns.size() << ' '
        << schema.primary_key << '\n';
    for (const Column& col : schema.columns) {
      out << "col " << col.name << ' ' << value_type_name(col.type) << '\n';
    }
    for (const Row* row : table.snapshot()) {
      out << "row";
      for (const Value& v : *row) {
        out << '\t' << v.encode();
      }
      out << '\n';
    }
    out << "end\n";
  }
  return static_cast<bool>(out);
}

bool Database::load(const std::string& path) {
  tables_.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != "seqrtgdb 1") return false;

  Table* current = nullptr;
  std::string current_name;
  std::vector<Column> pending_columns;
  int pending_pk = -1;

  const auto finalise = [&]() {
    Schema schema;
    schema.columns = pending_columns;
    schema.primary_key = pending_pk;
    auto [it, inserted] =
        tables_.insert_or_assign(current_name, Table(std::move(schema)));
    current = &it->second;
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (util::starts_with(line, "table ")) {
      const auto parts = util::split_whitespace(line);
      if (parts.size() != 4) return false;
      current_name = std::string(parts[1]);
      current = nullptr;  // finalised once all columns are read
      pending_columns.clear();
      pending_pk = static_cast<int>(
          std::strtol(std::string(parts[3]).c_str(), nullptr, 10));
    } else if (util::starts_with(line, "col ")) {
      const auto parts = util::split_whitespace(line);
      if (parts.size() != 3) return false;
      ValueType type = ValueType::Text;
      if (parts[2] == "INTEGER") type = ValueType::Integer;
      if (parts[2] == "REAL") type = ValueType::Real;
      pending_columns.push_back({std::string(parts[1]), type});
    } else if (util::starts_with(line, "row")) {
      if (current_name.empty()) return false;
      if (current == nullptr) finalise();
      const auto fields = util::split(line, '\t');
      Row row;
      row.reserve(fields.size() - 1);
      for (std::size_t i = 1; i < fields.size(); ++i) {
        bool ok = false;
        row.push_back(Value::decode(fields[i], &ok));
        if (!ok) return false;
      }
      if (!current->insert(std::move(row))) return false;
    } else if (line == "end") {
      if (current == nullptr && !current_name.empty()) {
        finalise();  // table with zero rows
      }
      current = nullptr;
      current_name.clear();
      pending_columns.clear();
      pending_pk = -1;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace seqrtg::store
