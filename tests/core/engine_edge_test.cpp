// Edge cases across the engine: same-text/different-type id collisions,
// key conflicts, threshold boundaries, huge messages, odd services.
#include <gtest/gtest.h>

#include "core/analyze_by_service.hpp"
#include "core/parser.hpp"
#include "core/repository.hpp"

namespace seqrtg::core {
namespace {

TEST(EngineEdge, SameTextDifferentTypesWidenToString) {
  // A field that is usually hex but sometimes all-digit produces two
  // patterns with identical text ("pid=%pid%") and colliding SHA-1 ids.
  // The repository widens the variable to %string% so every shape matches.
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  engine.analyze_by_service({
      {"s", "job pid=deadbeef01 ok"},
      {"s", "job pid=cafebabe99 ok"},
      {"s", "job pid=123456789012 ok"},  // scans as Integer
      {"s", "job pid=998877665544 ok"},
  });
  Parser parser;
  for (const Pattern& p : repo.load_service("s")) parser.add_pattern(p);
  EXPECT_TRUE(parser.parse("s", "job pid=00ff00ff00 ok").has_value());
  EXPECT_TRUE(parser.parse("s", "job pid=555566667777 ok").has_value());
}

TEST(EngineEdge, KeyConflictDropsSemanticName) {
  // The same trie position carries key "port" in some messages and key
  // "size" in others; the variable must fall back to its type name.
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  engine.analyze_by_service({
      {"s", "set port=1 now"},
      {"s", "set size=2 now"},
  });
  for (const Pattern& p : repo.load_service("s")) {
    for (const PatternToken& t : p.tokens) {
      if (t.is_variable) {
        EXPECT_TRUE(t.name.empty() || t.name == "port" || t.name == "size")
            << t.name;
      }
    }
  }
}

TEST(EngineEdge, SaveThresholdBoundaryIsInclusive) {
  InMemoryRepository repo;
  EngineOptions opts;
  opts.save_threshold = 2;
  Engine engine(&repo, opts);
  const BatchReport report = engine.analyze_by_service({
      {"s", "pair event 10.0.0.1"},
      {"s", "pair event 10.0.0.2"},  // exactly at the threshold
  });
  EXPECT_EQ(report.new_patterns, 1u);
  EXPECT_EQ(report.below_threshold, 0u);
}

TEST(EngineEdge, VeryLongMessageIsBoundedByTokenCap) {
  std::string message = "start";
  for (int i = 0; i < 2000; ++i) {
    message += " tok" + std::to_string(i);
  }
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  engine.analyze_by_service({{"s", message}});
  const auto patterns = repo.load_service("s");
  ASSERT_EQ(patterns.size(), 1u);
  // Default cap 512 + the %rest% marker.
  EXPECT_LE(patterns[0].token_count(), 513u);
  EXPECT_TRUE(patterns[0].tokens.back().is_variable);
  EXPECT_EQ(patterns[0].tokens.back().var_type, TokenType::Rest);
}

TEST(EngineEdge, ServiceNamesWithOddCharacters) {
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  const std::string service = "app/with:odd chars (v2)";
  engine.analyze_by_service({{service, "hello world"}});
  const auto patterns = repo.load_service(service);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].service, service);
}

TEST(EngineEdge, WhitespaceOnlyMessageIgnored) {
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  const BatchReport report =
      engine.analyze_by_service({{"s", "   \t  "}});
  EXPECT_EQ(report.analyzed, 0u);
  EXPECT_EQ(repo.pattern_count(), 0u);
}

TEST(EngineEdge, ManyServicesSingleMessageEach) {
  InMemoryRepository repo;
  EngineOptions opts;
  opts.threads = 4;
  Engine engine(&repo, opts);
  std::vector<LogRecord> batch;
  for (int i = 0; i < 300; ++i) {
    batch.push_back({"svc" + std::to_string(i), "boot complete"});
  }
  const BatchReport report = engine.analyze_by_service(batch);
  EXPECT_EQ(report.services, 300u);
  EXPECT_EQ(repo.pattern_count(), 300u);
  EXPECT_EQ(repo.services().size(), 300u);
}

TEST(EngineEdge, IdenticalMessagesFoldToOnePattern) {
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  std::vector<LogRecord> batch(50, {"s", "heartbeat ok"});
  engine.analyze_by_service(batch);
  const auto patterns = repo.load_service("s");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].stats.match_count, 50u);
  EXPECT_EQ(patterns[0].examples.size(), 1u);  // deduplicated
}

TEST(EngineEdge, CrossBatchStatsAccumulate) {
  InMemoryRepository repo;
  EngineOptions opts;
  opts.now_unix = 100;
  Engine first(&repo, opts);
  first.analyze_by_service({{"s", "tick 1"}, {"s", "tick 2"}});

  EngineOptions later = opts;
  later.now_unix = 200;
  Engine second(&repo, later);
  second.analyze_by_service({{"s", "tick 3"}});

  const auto patterns = repo.load_service("s");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].stats.match_count, 3u);
  EXPECT_EQ(patterns[0].stats.first_seen, 100);
  EXPECT_EQ(patterns[0].stats.last_matched, 200);
}

TEST(EngineEdge, UnicodePayloadSurvivesEndToEnd) {
  InMemoryRepository repo;
  Engine engine(&repo, EngineOptions{});
  engine.analyze_by_service({
      {"s", "utilisateur rémi connecté depuis 10.0.0.1"},
      {"s", "utilisateur émile connecté depuis 10.0.0.2"},
  });
  Parser parser;
  for (const Pattern& p : repo.load_service("s")) parser.add_pattern(p);
  EXPECT_TRUE(
      parser.parse("s", "utilisateur zoé connecté depuis 10.9.9.9")
          .has_value() ||
      repo.pattern_count() == 2u);
}

}  // namespace
}  // namespace seqrtg::core
