#include "util/xml.hpp"

#include <gtest/gtest.h>

namespace seqrtg::util {
namespace {

TEST(Xml, SimpleElement) {
  const auto r = xml_parse("<a>hello</a>");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.root.name, "a");
  EXPECT_EQ(r.root.text, "hello");
  EXPECT_TRUE(r.root.children.empty());
}

TEST(Xml, Attributes) {
  const auto r = xml_parse(R"(<rule id="abc" provider='seq'/>)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.root.attribute("id"), "abc");
  EXPECT_EQ(r.root.attribute("provider"), "seq");
  EXPECT_EQ(r.root.attribute("missing"), "");
}

TEST(Xml, NestedChildren) {
  const auto r = xml_parse(
      "<a><b>one</b><c/><b>two</b></a>");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.root.children.size(), 3u);
  const auto bs = r.root.children_named("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->text, "one");
  EXPECT_EQ(bs[1]->text, "two");
  EXPECT_NE(r.root.child("c"), nullptr);
  EXPECT_EQ(r.root.child("zz"), nullptr);
}

TEST(Xml, SelfClosing) {
  const auto r = xml_parse("<a><b/><b /></a>");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.root.children.size(), 2u);
}

TEST(Xml, DeclarationAndComments) {
  const auto r = xml_parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- top comment -->\n"
      "<a><!-- inner -->text<b/></a>\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.root.text, "text");
  EXPECT_EQ(r.root.children.size(), 1u);
}

TEST(Xml, EntityDecoding) {
  const auto r = xml_parse(
      "<a x=\"q&quot;q\">&lt;tag&gt; &amp; &apos;s &#65;&#x42;</a>");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.root.attribute("x"), "q\"q");
  EXPECT_EQ(r.root.text, "<tag> & 's AB");
}

TEST(Xml, WhitespaceInTextPreserved) {
  const auto r = xml_parse("<a>  spaced  out  </a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root.text, "  spaced  out  ");
}

TEST(Xml, Malformed) {
  EXPECT_FALSE(xml_parse("").ok());
  EXPECT_FALSE(xml_parse("<a>").ok());
  EXPECT_FALSE(xml_parse("<a></b>").ok());
  EXPECT_FALSE(xml_parse("<a x=1></a>").ok());          // unquoted attr
  EXPECT_FALSE(xml_parse("<a><b></a></b>").ok());       // crossed tags
  EXPECT_FALSE(xml_parse("<a/>junk").ok());             // trailing junk
  EXPECT_FALSE(xml_parse("<a x=\"1></a>").ok());        // unterminated attr
  EXPECT_FALSE(xml_parse("no markup").ok());
}

TEST(Xml, DeepNesting) {
  std::string doc;
  for (int i = 0; i < 50; ++i) doc += "<n>";
  doc += "leaf";
  for (int i = 0; i < 50; ++i) doc += "</n>";
  const auto r = xml_parse(doc);
  ASSERT_TRUE(r.ok()) << r.error;
  const XmlNode* node = &r.root;
  int depth = 1;
  while (!node->children.empty()) {
    node = &node->children[0];
    ++depth;
  }
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(node->text, "leaf");
}

}  // namespace
}  // namespace seqrtg::util
