#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace seqrtg::obs {

const char* trace_cat_name(TraceCat cat) {
  switch (cat) {
    case TraceCat::kScanner: return "scanner";
    case TraceCat::kParser: return "parser";
    case TraceCat::kEngine: return "engine";
    case TraceCat::kStore: return "store";
    case TraceCat::kServe: return "serve";
    case TraceCat::kPipeline: return "pipeline";
    case TraceCat::kMatchProg: return "matchprog";
  }
  return "unknown";
}

namespace {

/// Thread-local current-span id (automatic same-thread nesting).
thread_local std::uint64_t tl_current_span = 0;

}  // namespace

std::uint64_t current_span() { return tl_current_span; }

// ------------------------------------------------------------ ThreadRing

/// One slot of a thread ring. Every field is an atomic so a concurrent
/// capture is a data-race-free read; the seqlock counter tells the reader
/// whether the copy it took is consistent (even and unchanged across the
/// read) or torn by a wrapping writer (discard).
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  /// Generation stamp: collect() only trusts slots written since the last
  /// Tracer::start() — stale generations are skipped, not cleared.
  std::atomic<std::uint64_t> gen{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> cat{0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::int64_t> start_us{0};
  std::atomic<std::int64_t> dur_us{0};
  std::atomic<std::int64_t> arg1{-1};
  std::atomic<std::int64_t> arg2{-1};
};

struct Tracer::ThreadRing {
  explicit ThreadRing(std::size_t cap, std::uint32_t tid_in)
      : slots(std::make_unique<Slot[]>(cap)), capacity(cap), tid(tid_in) {}

  std::unique_ptr<Slot[]> slots;
  const std::size_t capacity;
  const std::uint32_t tid;
  /// Next logical write index; owner-written, reader takes acquire.
  std::atomic<std::uint64_t> head{0};
  /// Owner-thread-only: the tracer generation this ring last wrote under.
  std::uint64_t gen_seen = 0;
  /// Display name for the exported trace; guarded by the registry mutex.
  std::string thread_name;

  void write(const SpanRecord& r, std::uint64_t generation) {
    if (gen_seen != generation) {
      // First record since start(): restart the ring's logical indices so
      // wraparound accounting begins fresh. Old slots keep their stale
      // generation stamp and are ignored by collect().
      gen_seen = generation;
      head.store(0, std::memory_order_relaxed);
    }
    const std::uint64_t n = head.load(std::memory_order_relaxed);
    Slot& s = slots[n % capacity];
    const std::uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq0 + 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
    s.gen.store(generation, std::memory_order_relaxed);
    s.name.store(r.name, std::memory_order_relaxed);
    s.cat.store(static_cast<std::uint8_t>(r.cat), std::memory_order_relaxed);
    s.id.store(r.id, std::memory_order_relaxed);
    s.parent.store(r.parent, std::memory_order_relaxed);
    s.start_us.store(r.start_us, std::memory_order_relaxed);
    s.dur_us.store(r.dur_us, std::memory_order_relaxed);
    s.arg1.store(r.arg1, std::memory_order_relaxed);
    s.arg2.store(r.arg2, std::memory_order_relaxed);
    s.seq.store(seq0 + 2, std::memory_order_release);  // even: committed
    head.store(n + 1, std::memory_order_release);
  }

  /// Seqlock-validated copy of one slot; false when torn or from another
  /// generation.
  bool read(std::size_t index, std::uint64_t generation, std::uint32_t* tid_out,
            SpanRecord* out) const {
    const Slot& s = slots[index];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) return false;
    SpanRecord r;
    const std::uint64_t slot_gen = s.gen.load(std::memory_order_relaxed);
    r.name = s.name.load(std::memory_order_relaxed);
    r.cat = static_cast<TraceCat>(s.cat.load(std::memory_order_relaxed));
    r.id = s.id.load(std::memory_order_relaxed);
    r.parent = s.parent.load(std::memory_order_relaxed);
    r.start_us = s.start_us.load(std::memory_order_relaxed);
    r.dur_us = s.dur_us.load(std::memory_order_relaxed);
    r.arg1 = s.arg1.load(std::memory_order_relaxed);
    r.arg2 = s.arg2.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) return false;
    if (slot_gen != generation || r.name == nullptr) return false;
    r.tid = tid;
    if (tid_out != nullptr) *tid_out = tid;
    *out = r;
    return true;
  }
};

// ---------------------------------------------------------------- Tracer

namespace {

/// Per-thread ring cache. A thread may record into different Tracer
/// instances over its life (tests construct local tracers); the cache is
/// revalidated against the owner pointer on every lookup.
struct RingCache {
  const void* owner = nullptr;
  std::shared_ptr<void> ring;
};
thread_local RingCache tl_ring_cache;

}  // namespace

Tracer::ThreadRing* Tracer::ring_for_this_thread() {
  const std::size_t cap = ring_capacity_.load(std::memory_order_relaxed);
  if (tl_ring_cache.owner == this) {
    auto* cached = static_cast<ThreadRing*>(tl_ring_cache.ring.get());
    // A start() with a different ring size retires this thread's ring; a
    // fresh one is registered below (the old one's spans are already
    // invalidated by the generation bump).
    if (cached->capacity == cap) return cached;
  }
  std::lock_guard lock(registry_mutex_);
  auto ring = std::make_shared<ThreadRing>(
      cap, static_cast<std::uint32_t>(rings_.size()));
  rings_.push_back(ring);
  tl_ring_cache.owner = this;
  tl_ring_cache.ring = ring;
  return ring.get();
}

void Tracer::start(const TracerConfig& config) {
  std::lock_guard lock(registry_mutex_);
  config_ = config;
  sample_mask_.store(config.sample_mask, std::memory_order_relaxed);
  ring_capacity_.store(config.ring_capacity == 0 ? 1 : config.ring_capacity,
                       std::memory_order_relaxed);
  clock_.store(config.clock != nullptr ? config.clock
                                       : &util::Clock::system(),
               std::memory_order_release);
  // Invalidate every captured span: rings stamp records with the
  // generation, so bumping it clears the trace without touching slots
  // owned by other threads.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  span_ids_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

std::int64_t Tracer::now_us() {
  util::Clock* clock = clock_.load(std::memory_order_acquire);
  return (clock != nullptr ? clock : &util::Clock::system())->now_us();
}

bool Tracer::sample_tick() {
  thread_local std::uint64_t tick = 0;
  return (tick++ & sample_mask_.load(std::memory_order_relaxed)) == 0;
}

void Tracer::set_thread_name(const char* name) {
  ThreadRing* ring = ring_for_this_thread();
  std::lock_guard lock(registry_mutex_);
  ring->thread_name = name;
}

void Tracer::record(const SpanRecord& span) {
  ring_for_this_thread()->write(span,
                                generation_.load(std::memory_order_acquire));
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::collect(std::int64_t since_us) const {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(registry_mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t first =
        head > ring->capacity ? head - ring->capacity : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      SpanRecord r;
      if (!ring->read(i % ring->capacity, gen, nullptr, &r)) continue;
      if (r.start_us + r.dur_us < since_us) continue;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

std::string Tracer::to_chrome_json(
    const std::vector<SpanRecord>& spans) const {
  // Hand-built JSON: integers must render exactly (µs timestamps and span
  // ids overflow the %g path of the generic writer) and the output must be
  // byte-stable for the golden trace test.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto append_event = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += event;
  };

  // Thread-name metadata events (chrome://tracing's track labels).
  {
    std::lock_guard lock(registry_mutex_);
    for (const auto& ring : rings_) {
      if (ring->thread_name.empty()) continue;
      append_event(
          "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(ring->tid) +
          ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
          ring->thread_name + "\"}}");
    }
  }

  for (const SpanRecord& s : spans) {
    std::string event = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                        std::to_string(s.tid) +
                        ",\"ts\":" + std::to_string(s.start_us) +
                        ",\"dur\":" + std::to_string(s.dur_us) +
                        ",\"cat\":\"" + trace_cat_name(s.cat) +
                        "\",\"name\":\"" + s.name +
                        "\",\"args\":{\"id\":" + std::to_string(s.id) +
                        ",\"parent\":" + std::to_string(s.parent);
    if (s.arg1 >= 0) event += ",\"arg1\":" + std::to_string(s.arg1);
    if (s.arg2 >= 0) event += ",\"arg2\":" + std::to_string(s.arg2);
    event += "}}";
    append_event(event);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_json(collect());
  return f.good();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

// -------------------------------------------------------------- TraceSpan

void TraceSpan::open(TraceCat cat, const char* name, bool sampled) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  if (sampled && !t.sample_tick()) return;
  span_.cat = cat;
  span_.name = name;
  span_.id = t.next_span_id();
  span_.parent = tl_current_span;
  span_.start_us = t.now_us();
  prev_current_ = tl_current_span;
  tl_current_span = span_.id;
}

void TraceSpan::end() {
  if (span_.id == 0) return;
  Tracer& t = tracer();
  span_.dur_us = t.now_us() - span_.start_us;
  tl_current_span = prev_current_;
  t.record(span_);
  span_.id = 0;
}

// ----------------------------------------------------------- ScopedParent

ScopedParent::ScopedParent(std::uint64_t parent_id)
    : prev_(tl_current_span), active_(trace_enabled()) {
  if (active_) tl_current_span = parent_id;
}

ScopedParent::~ScopedParent() {
  if (active_) tl_current_span = prev_;
}

}  // namespace seqrtg::obs
