// Bump-allocator arena.
//
// The analyser trie allocates one node per distinct token position; on a
// production batch that is hundreds of thousands of small allocations whose
// lifetimes all end together when the batch's trie is dropped. A bump
// allocator turns each node allocation into a pointer increment and frees
// the whole population in one sweep, which removes the allocator from the
// hot path entirely (the same observation USTEP and other streaming tree
// parsers make about per-message node churn).
//
// Ownership rules:
//  - allocate()/create() memory is valid until reset() or destruction; there
//    is no per-object free. Objects detached from their container (e.g.
//    trie nodes folded away by the merge pass) simply stay resident until
//    the arena goes — acceptable because arenas are batch-scoped.
//  - create<T>() registers a finalizer when T is not trivially destructible,
//    so members that own heap memory (vectors, strings) are destroyed at
//    reset()/destruction. Finalizers run in reverse creation order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace seqrtg::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}
  ~Arena() { run_finalizers(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Blocks and finalizer targets live on the heap, so moving the arena
  // leaves every handed-out pointer valid.
  Arena(Arena&& other) noexcept = default;
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      run_finalizers();
      block_bytes_ = other.block_bytes_;
      blocks_ = std::move(other.blocks_);
      finalizers_ = std::move(other.finalizers_);
      used_ = other.used_;
      other.blocks_.clear();
      other.finalizers_.clear();
      other.used_ = 0;
    }
    return *this;
  }

  /// Raw aligned storage, valid until reset()/destruction. `align` must be
  /// a power of two.
  void* allocate(std::size_t size, std::size_t align) {
    if (size == 0) size = 1;
    Block* b = blocks_.empty() ? nullptr : &blocks_.back();
    // Align the actual address, not the block offset: new char[] storage is
    // only guaranteed 16-byte-aligned, so over-aligned requests need the
    // base folded in.
    std::size_t at = b == nullptr ? 0 : aligned_offset(*b, align);
    if (b == nullptr || at + size > b->cap) {
      b = grow(size + align);
      at = aligned_offset(*b, align);
    }
    char* p = b->data.get() + at;
    b->used = at + size;
    used_ += size;
    return p;
  }

  /// Constructs a T in arena storage. Non-trivially-destructible objects
  /// are destroyed (reverse creation order) at reset()/destruction.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          {obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Destroys every created object and releases all but the first block,
  /// ready for reuse without touching the system allocator.
  void reset() {
    run_finalizers();
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) blocks_.front().used = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_used() const { return used_; }

  /// Bytes reserved from the system allocator across all blocks.
  std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.cap;
    return n;
  }

  std::size_t block_count() const { return blocks_.size(); }

  /// Bytes handed out to callers (alias of bytes_used(); the governance
  /// accounting layer standardises on the allocated/resident pair).
  std::size_t bytes_allocated() const { return used_; }

  /// Bytes this arena holds resident from the process allocator: every
  /// block's full capacity (slack included) plus the bookkeeping vectors.
  /// This is the number the memory accountant charges, because it is what
  /// the OS actually cannot reclaim while the arena lives.
  std::size_t bytes_resident() const {
    return bytes_reserved() + blocks_.capacity() * sizeof(Block) +
           finalizers_.capacity() * sizeof(Finalizer);
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  static std::size_t aligned_offset(const Block& b, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    return align_up(base + b.used, align) - base;
  }

  Block* grow(std::size_t min_bytes) {
    const std::size_t cap = min_bytes > block_bytes_ ? min_bytes
                                                     : block_bytes_;
    blocks_.push_back({std::make_unique<char[]>(cap), cap, 0});
    return &blocks_.back();
  }

  void run_finalizers() {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->destroy(it->object);
    }
    finalizers_.clear();
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Finalizer> finalizers_;
  std::size_t used_ = 0;
};

}  // namespace seqrtg::util
