#include "serve/cluster.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "util/signal.hpp"

namespace seqrtg::serve {

namespace {

struct ClusterMetrics {
  obs::Counter& records;
  obs::Counter& groups_shipped;
  obs::Counter& groups_applied;
  obs::Counter& malformed;
};

ClusterMetrics& cluster_metrics() {
  auto& reg = obs::default_registry();
  static ClusterMetrics m{
      reg.counter("seqrtg_cluster_records_total",
                  "Binary kRecord frames decoded and ingested"),
      reg.counter("seqrtg_cluster_groups_shipped_total",
                  "WAL commit groups shipped to the hot standby"),
      reg.counter("seqrtg_cluster_groups_applied_total",
                  "Replicated WAL commit groups applied (standby role)"),
      reg.counter("seqrtg_cluster_malformed_total",
                  "Cluster connections dropped for a framing violation")};
  return m;
}

}  // namespace

bool ClusterClient::connect(int port, std::uint8_t role,
                            const std::string& node_id) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    close();
    return false;
  }
  return send(cluster_stream_header() + encode_hello(role, node_id));
}

bool ClusterClient::send(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool ClusterClient::peer_dead() {
  if (fd_ < 0) return true;
  pollfd pfd = {fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc <= 0) return false;  // nothing readable: still healthy
  return pfd.revents != 0;
}

void ClusterClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

ClusterNode::ClusterNode(store::PatternStore* store, ClusterNodeOptions opts)
    : store_(store), opts_(std::move(opts)),
      server_(store, opts_.serve) {}

ClusterNode::~ClusterNode() {
  if (started_.load(std::memory_order_relaxed)) stop();
}

bool ClusterNode::start(std::string* error) {
  if (!server_.start(error)) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    server_.stop();
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.cluster_port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    server_.stop();
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  cluster_port_ = ntohs(addr.sin_port);

  if (opts_.ship_to >= 0) {
    if (!shipper_.connect(opts_.ship_to, kPeerShipper, opts_.node_id)) {
      if (error != nullptr) {
        *error = "standby connect to port " + std::to_string(opts_.ship_to) +
                 " failed";
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      server_.stop();
      return false;
    }
    // The sink runs inside the store's commit path (under its mutex), so
    // groups ship in exact WAL order and a group handed to us is already
    // locally durable.
    store_->set_commit_sink([this](std::uint64_t seq, std::string_view ops) {
      ship_group(seq, ops);
    });
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  started_.store(true, std::memory_order_relaxed);
  obs::logev(obs::LogLevel::kInfo, "cluster", "node_start",
             {{"node", opts_.node_id},
              {"cluster_port", static_cast<std::int64_t>(cluster_port_)},
              {"ship_to", static_cast<std::int64_t>(opts_.ship_to)}});
  return true;
}

void ClusterNode::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                     {util::shutdown_fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, 200);
    if (rc < 0 && errno != EINTR) return;
    if (stopping_.load(std::memory_order_relaxed) ||
        util::shutdown_requested()) {
      return;
    }
    if (rc <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    std::lock_guard lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void ClusterNode::count_malformed(int fd, const std::string& error) {
  malformed_streams_.fetch_add(1, std::memory_order_relaxed);
  if (obs::telemetry_enabled()) cluster_metrics().malformed.inc();
  obs::logev(obs::LogLevel::kWarn, "cluster", "malformed_stream",
             {{"node", opts_.node_id}, {"error", error},
              {"fd", static_cast<std::int64_t>(fd)}});
  notify();
}

void ClusterNode::connection_loop(int fd) {
  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  char chunk[65536];
  bool open = true;
  bool clean_eof = false;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR && !stopping_.load(std::memory_order_relaxed)) {
        continue;
      }
      break;
    }
    if (n == 0) {
      clean_eof = true;
      break;
    }
    frames.clear();
    if (!decoder.feed(std::string_view(chunk, static_cast<std::size_t>(n)),
                      &frames)) {
      // Poisoned: apply the frames decoded before the violation, then
      // drop the connection — exactly one malformed count per stream.
      open = false;
    }
    for (const ClusterFrame& frame : frames) {
      switch (frame.type) {
        case ClusterFrameType::kRecord:
          records_.fetch_add(1, std::memory_order_relaxed);
          if (obs::telemetry_enabled()) cluster_metrics().records.inc();
          if (!server_.ingest_record(frame.record)) open = false;
          break;
        case ClusterFrameType::kWalGroup:
          if (store_->apply_replicated_group(frame.seq, frame.ops)) {
            groups_applied_.fetch_add(1, std::memory_order_relaxed);
            if (obs::telemetry_enabled()) {
              cluster_metrics().groups_applied.inc();
            }
            std::uint64_t prev =
                last_applied_seq_.load(std::memory_order_relaxed);
            while (prev < frame.seq &&
                   !last_applied_seq_.compare_exchange_weak(
                       prev, frame.seq, std::memory_order_relaxed)) {
            }
          }
          break;
        case ClusterFrameType::kHello:
        case ClusterFrameType::kAck:
          break;  // identification / reserved: nothing to apply
      }
      notify();
    }
    if (decoder.poisoned()) count_malformed(fd, decoder.error());
  }
  // A clean close mid-frame is a truncation the CRC never saw.
  if (clean_eof && !decoder.poisoned() && decoder.pending_bytes() > 0) {
    count_malformed(fd, "EOF inside a frame (" +
                            std::to_string(decoder.pending_bytes()) +
                            " pending bytes)");
  }
  {
    std::lock_guard lock(conn_mutex_);
    std::erase(conn_fds_, fd);
  }
  ::close(fd);
}

void ClusterNode::ship_group(std::uint64_t seq, std::string_view ops) {
  std::lock_guard lock(ship_mutex_);
  const std::uint64_t index =
      ship_index_.fetch_add(1, std::memory_order_relaxed);
  if (!ship_wedged_.load(std::memory_order_relaxed) && opts_.ship_fault &&
      opts_.ship_fault(index)) {
    ship_wedged_.store(true, std::memory_order_relaxed);
    obs::logev(obs::LogLevel::kWarn, "cluster", "ship_wedged",
               {{"node", opts_.node_id}, {"group", index}});
  }
  if (ship_wedged_.load(std::memory_order_relaxed)) {
    groups_lost_.fetch_add(1, std::memory_order_relaxed);
    notify();
    return;
  }
  if (!shipper_.send(encode_wal_group(seq, ops))) {
    // Broken link and no resync protocol: latch, account, keep serving.
    ship_wedged_.store(true, std::memory_order_relaxed);
    groups_lost_.fetch_add(1, std::memory_order_relaxed);
    obs::logev(obs::LogLevel::kError, "cluster", "ship_failed",
               {{"node", opts_.node_id}, {"seq", seq}});
    notify();
    return;
  }
  groups_shipped_.fetch_add(1, std::memory_order_relaxed);
  if (obs::telemetry_enabled()) cluster_metrics().groups_shipped.inc();
  notify();
}

ServeReport ClusterNode::stop() {
  if (stopped_) return final_report_;
  stopping_.store(true, std::memory_order_relaxed);

  // 1. Cluster listener and connections first — no new frames.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain the server; its final flushes still commit, and every commit
  //    still ships through the sink.
  final_report_ = server_.stop();

  // 3. Only now detach the sink and drop the standby link.
  store_->set_commit_sink(nullptr);
  shipper_.close();

  stopped_ = true;
  obs::logev(obs::LogLevel::kInfo, "cluster", "node_stop",
             {{"node", opts_.node_id},
              {"records", records_.load(std::memory_order_relaxed)},
              {"shipped", groups_shipped_.load(std::memory_order_relaxed)},
              {"lost", groups_lost_.load(std::memory_order_relaxed)}});
  return final_report_;
}

ClusterNodeStats ClusterNode::stats() const {
  ClusterNodeStats s;
  s.records = records_.load(std::memory_order_relaxed);
  s.groups_applied = groups_applied_.load(std::memory_order_relaxed);
  s.last_applied_seq = last_applied_seq_.load(std::memory_order_relaxed);
  s.malformed_streams = malformed_streams_.load(std::memory_order_relaxed);
  s.groups_shipped = groups_shipped_.load(std::memory_order_relaxed);
  s.groups_lost = groups_lost_.load(std::memory_order_relaxed);
  s.ship_wedged = ship_wedged_.load(std::memory_order_relaxed);
  return s;
}

void ClusterNode::notify() const {
  { std::lock_guard lock(progress_mutex_); }
  progress_cv_.notify_all();
}

bool ClusterNode::wait_until(const std::function<bool()>& pred,
                             std::chrono::milliseconds timeout) const {
  // Poll on a short tick as well as on notify(): predicates often span
  // this node's stats AND the inner server's counters, and the server has
  // its own condition variable we cannot wait on simultaneously.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(progress_mutex_);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    progress_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
  return true;
}

}  // namespace seqrtg::serve
