#include "core/governor.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"

namespace seqrtg::core {

namespace {

struct GovernorMetrics {
  obs::Gauge& resident_bytes;
  obs::Gauge& ceiling_bytes;
  obs::Gauge& resident_partitions;
  obs::Counter& spills;
  obs::Counter& reloads;
  obs::Counter& sheds;
};

GovernorMetrics& governor_metrics() {
  static GovernorMetrics m{
      obs::default_registry().gauge(
          "seqrtg_governor_resident_bytes",
          "Partition bytes currently charged to the memory accountant"),
      obs::default_registry().gauge(
          "seqrtg_governor_ceiling_bytes",
          "Configured memory ceiling (0 = governance disabled)"),
      obs::default_registry().gauge(
          "seqrtg_governor_resident_partitions",
          "Service partitions currently resident in RAM"),
      obs::default_registry().counter(
          "seqrtg_governor_spill_total",
          "Cold service partitions spilled to the pattern store"),
      obs::default_registry().counter(
          "seqrtg_governor_reload_total",
          "Spilled service partitions transparently reloaded on touch"),
      obs::default_registry().counter(
          "seqrtg_governor_shed_total",
          "Records shed at admission while the governor was overloaded"),
  };
  return m;
}

obs::Gauge& category_gauge(MemCategory c) {
  static obs::Gauge* gauges[kMemCategoryCount] = {
      &obs::default_registry().gauge(
          "seqrtg_engine_trie_arena_resident_bytes",
          "Resident bytes of the analyser trie arenas (last batch)"),
      &obs::default_registry().gauge(
          "seqrtg_engine_interner_resident_bytes",
          "Resident bytes of the literal interner pools (last batch)"),
      &obs::default_registry().gauge(
          "seqrtg_sketch_resident_bytes",
          "Approximate resident bytes of the value-sketch registry"),
  };
  return *gauges[static_cast<std::size_t>(c)];
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryAccountant

void MemoryAccountant::set_partition_bytes(std::string_view service,
                                           std::size_t bytes) {
  std::lock_guard lock(mutex_);
  if (fault_ && fault_(events_)) skew_ += kFaultSkewBytes;
  ++events_;
  auto it = partitions_.find(service);
  if (it == partitions_.end()) {
    partitions_.emplace(std::string(service), bytes);
    total_ += bytes;
  } else {
    total_ += bytes;
    total_ -= it->second;
    it->second = bytes;
  }
  if (total_ + skew_ > peak_) peak_ = total_ + skew_;
  if (obs::telemetry_enabled()) {
    governor_metrics().resident_bytes.set(
        static_cast<double>(total_ + skew_));
    governor_metrics().resident_partitions.set(
        static_cast<double>(partitions_.size()));
  }
}

void MemoryAccountant::drop_partition(std::string_view service) {
  std::lock_guard lock(mutex_);
  if (fault_ && fault_(events_)) skew_ += kFaultSkewBytes;
  ++events_;
  auto it = partitions_.find(service);
  if (it == partitions_.end()) return;
  total_ -= it->second;
  partitions_.erase(it);
  if (obs::telemetry_enabled()) {
    governor_metrics().resident_bytes.set(
        static_cast<double>(total_ + skew_));
    governor_metrics().resident_partitions.set(
        static_cast<double>(partitions_.size()));
  }
}

std::size_t MemoryAccountant::partition_bytes(std::string_view service) const {
  std::lock_guard lock(mutex_);
  auto it = partitions_.find(service);
  return it == partitions_.end() ? 0 : it->second;
}

std::size_t MemoryAccountant::partition_count() const {
  std::lock_guard lock(mutex_);
  return partitions_.size();
}

std::size_t MemoryAccountant::resident_bytes() const {
  std::lock_guard lock(mutex_);
  return total_ + skew_;
}

std::size_t MemoryAccountant::peak_resident_bytes() const {
  std::lock_guard lock(mutex_);
  return peak_;
}

void MemoryAccountant::reset_peak() {
  std::lock_guard lock(mutex_);
  peak_ = total_ + skew_;
}

void MemoryAccountant::set_category_bytes(MemCategory c, std::size_t bytes) {
  {
    std::lock_guard lock(mutex_);
    categories_[static_cast<std::size_t>(c)] = bytes;
  }
  if (obs::telemetry_enabled()) {
    category_gauge(c).set(static_cast<double>(bytes));
  }
}

std::size_t MemoryAccountant::category_bytes(MemCategory c) const {
  std::lock_guard lock(mutex_);
  return categories_[static_cast<std::size_t>(c)];
}

std::optional<std::string> MemoryAccountant::audit(
    const std::map<std::string, std::size_t>& actual) const {
  std::lock_guard lock(mutex_);
  for (const auto& [service, bytes] : actual) {
    auto it = partitions_.find(service);
    if (it == partitions_.end()) {
      return "partition untracked by accountant: " + service;
    }
    if (it->second != bytes) {
      return "partition bytes mismatch for " + service + ": ledger " +
             std::to_string(it->second) + " vs actual " +
             std::to_string(bytes);
    }
  }
  for (const auto& [service, bytes] : partitions_) {
    if (actual.find(service) == actual.end()) {
      return "ledger charges non-resident partition: " + service;
    }
  }
  std::size_t actual_total = 0;
  for (const auto& [service, bytes] : actual) actual_total += bytes;
  // The per-partition pass above already proved the per-service figures
  // equal; this catches a skewed global figure (the misaccount fault is a
  // sticky over-count, exactly a lost decrement).
  if (total_ + skew_ != actual_total) {
    return "ledger total " + std::to_string(total_ + skew_) +
           " != recount total " + std::to_string(actual_total);
  }
  return std::nullopt;
}

void MemoryAccountant::set_fault_hook(FaultHook hook) {
  std::lock_guard lock(mutex_);
  fault_ = std::move(hook);
}

// ---------------------------------------------------------------------------
// Governor

Governor::Governor(GovernorPolicy policy, MemoryAccountant* accountant)
    : policy_(policy),
      accountant_(accountant),
      clock_(policy.clock != nullptr ? policy.clock
                                     : &util::Clock::system()) {
  if (obs::telemetry_enabled()) {
    governor_metrics().ceiling_bytes.set(
        static_cast<double>(policy_.ceiling_bytes));
  }
}

void Governor::attach_target(SpillTarget* target) {
  std::lock_guard lock(mutex_);
  target_ = target;
}

Governor::Entry& Governor::entry_locked(std::string_view service) {
  auto it = entries_.find(service);
  if (it == entries_.end()) {
    lru_.emplace_back(service);
    auto lru_it = std::prev(lru_.end());
    it = entries_.emplace(std::string(service), Entry{lru_it, 0, 0}).first;
  }
  return it->second;
}

void Governor::erase_locked(std::string_view service) {
  auto it = entries_.find(service);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void Governor::touch(std::string_view service) {
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(service);
  lru_.splice(lru_.end(), lru_, e.lru_it);  // move to hot end
  e.last_touch_ms = clock_->now_ms();
}

void Governor::pin(std::string_view service) {
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(service);
  lru_.splice(lru_.end(), lru_, e.lru_it);
  e.last_touch_ms = clock_->now_ms();
  ++e.pins;
}

void Governor::unpin(std::string_view service) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(service);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

void Governor::on_resident(std::string_view service) {
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(service);
  lru_.splice(lru_.end(), lru_, e.lru_it);
  e.last_touch_ms = clock_->now_ms();
  auto sp = spilled_.find(service);
  if (sp != spilled_.end()) {
    spilled_.erase(sp);
    ++reloads_;
    if (obs::telemetry_enabled()) governor_metrics().reloads.inc();
  }
}

bool Governor::on_spilled(std::string_view service) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(service);
  if (it != entries_.end() && it->second.pins > 0) {
    // A lane pinned this partition after the store's try_claim_spill but
    // before this commit callback: the claim failed late. Keep the entry
    // (and its pin count) so the pin protocol holds; the store must undo
    // the spill before releasing its lock.
    return false;
  }
  erase_locked(service);
  spilled_[std::string(service)] = true;
  ++spills_;
  if (obs::telemetry_enabled()) governor_metrics().spills.inc();
  return true;
}

void Governor::on_deleted(std::string_view service) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(service);
  if (it != entries_.end() && it->second.pins > 0) {
    // The partition's rows went away (zero-row refresh, corrupt spill
    // file) while a lane holds a pin. Erasing the entry would destroy the
    // pin count: the lane's later unpin would hit a recreated entry at
    // pins=0, leaving the in-flight window spillable. Keep the entry; it
    // is uncharged (the ledger drop already happened) and gets cleaned up
    // once unpinned.
    spilled_.erase(std::string(service));
    return;
  }
  erase_locked(service);
  spilled_.erase(std::string(service));
}

void Governor::seed_spilled(std::string_view service) {
  std::lock_guard lock(mutex_);
  erase_locked(service);
  spilled_[std::string(service)] = true;
}

bool Governor::try_claim_spill(std::string_view service) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(service);
  return it != entries_.end() && it->second.pins == 0;
}

std::size_t Governor::enforce() {
  if (!enabled()) return 0;
  const std::size_t target_bytes = static_cast<std::size_t>(
      static_cast<double>(policy_.ceiling_bytes) * policy_.spill_watermark);

  std::size_t spilled_count = 0;
  bool blocked = false;
  {
    std::lock_guard lock(mutex_);
    ++enforce_calls_;
  }
  // Spill one candidate per iteration: pick the coldest eligible
  // partition under the governor lock, release it, then call the store
  // (which takes its own lock and calls back into on_spilled). Never
  // holding both locks at once keeps the lock order acyclic with lanes
  // that call touch/pin from inside store operations.
  //
  // Victims the store refuses (pinned at the final claim, buffered in an
  // open batch scope, zero rows) are remembered and skipped so selection
  // moves on to the next-coldest candidate — a single stuck entry at the
  // LRU front must not flip the governor overloaded while plenty of
  // spillable cold partitions sit behind it. blocked is only set once no
  // candidate in the whole LRU can be spilled.
  std::set<std::string, std::less<>> refused;
  while (spilled_count < policy_.spill_batch &&
         accountant_->resident_bytes() > target_bytes) {
    std::string victim;
    SpillTarget* target = nullptr;
    {
      std::lock_guard lock(mutex_);
      target = target_;
      if (target == nullptr) {
        blocked = true;
        break;
      }
      const std::int64_t now = clock_->now_ms();
      for (const std::string& service : lru_) {  // coldest first
        auto it = entries_.find(service);
        if (it->second.pins > 0) continue;
        if (refused.find(service) != refused.end()) continue;
        if (policy_.min_cold_ms > 0 &&
            now - it->second.last_touch_ms < policy_.min_cold_ms) {
          // The list is touch-ordered, so everything hotter is too warm
          // as well.
          break;
        }
        victim = service;
        break;
      }
      if (victim.empty()) {
        blocked = true;
        break;
      }
    }
    if (!target->spill_partition(victim)) {
      refused.insert(std::move(victim));
      continue;
    }
    ++spilled_count;
  }

  const bool over =
      accountant_->resident_bytes() > policy_.ceiling_bytes && blocked;
  {
    std::lock_guard lock(mutex_);
    overloaded_ = over;
  }
  if (spilled_count > 0 && obs::telemetry_enabled()) {
    obs::logev(obs::LogLevel::kDebug, "governor", "enforce",
               {{"spilled", spilled_count},
                {"resident", accountant_->resident_bytes()},
                {"overloaded", over}});
  }
  return spilled_count;
}

bool Governor::overloaded() const {
  std::lock_guard lock(mutex_);
  return overloaded_;
}

void Governor::note_shed() {
  {
    std::lock_guard lock(mutex_);
    ++sheds_;
  }
  if (obs::telemetry_enabled()) governor_metrics().sheds.inc();
}

Governor::Stats Governor::stats() const {
  Stats s;
  s.resident_bytes = accountant_->resident_bytes();
  s.peak_resident_bytes = accountant_->peak_resident_bytes();
  std::lock_guard lock(mutex_);
  s.ceiling_bytes = policy_.ceiling_bytes;
  s.resident_partitions = entries_.size();
  s.spilled_partitions = spilled_.size();
  for (const auto& [service, e] : entries_) {
    if (e.pins > 0) ++s.pinned_partitions;
  }
  s.spills = spills_;
  s.reloads = reloads_;
  s.sheds = sheds_;
  s.enforce_calls = enforce_calls_;
  return s;
}

std::string Governor::debug_json() const {
  const Stats s = stats();
  std::ostringstream out;
  out << "{\"ceiling_bytes\":" << s.ceiling_bytes
      << ",\"resident_bytes\":" << s.resident_bytes
      << ",\"peak_resident_bytes\":" << s.peak_resident_bytes
      << ",\"resident_partitions\":" << s.resident_partitions
      << ",\"spilled_partitions\":" << s.spilled_partitions
      << ",\"pinned_partitions\":" << s.pinned_partitions
      << ",\"spills\":" << s.spills << ",\"reloads\":" << s.reloads
      << ",\"sheds\":" << s.sheds << ",\"enforce_calls\":" << s.enforce_calls
      << ",\"overloaded\":" << (overloaded() ? "true" : "false") << "}";
  return out.str();
}

std::vector<std::string> Governor::lru_order() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace seqrtg::core
