#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/ingest.hpp"
#include "obs/build_info.hpp"
#include "obs/exposition.hpp"
#include "obs/stage_timer.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace seqrtg::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsLandExactlyOnce) {
  MetricsRegistry reg;
  Counter& c = reg.counter("concurrent_total");
  Histogram& h = reg.histogram("concurrent_seconds");
  constexpr std::size_t kIters = 20000;
  util::ThreadPool pool(8);
  pool.parallel_for(kIters, [&](std::size_t i) {
    c.inc();
    h.observe(static_cast<double>(i % 10) * 1e-4);
  });
  EXPECT_EQ(c.value(), kIters);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, kIters);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : s.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, kIters);
}

TEST(Counter, SameNameAndLabelsReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ops_total", "help", {{"op", "save"}});
  Counter& b = reg.counter("ops_total", "", {{"op", "save"}});
  Counter& other = reg.counter("ops_total", "", {{"op", "load"}});
  a.inc();
  b.inc();
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Counter, LabelOrderDoesNotSplitInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("l_total", "", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("l_total", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x_total");
  EXPECT_THROW(reg.gauge("x_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("x_total"), std::logic_error);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("backlog");
  g.set(12.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Histogram, RejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("h1", "", {}, {}), std::logic_error);
  EXPECT_THROW(reg.histogram("h2", "", {}, {1.0, 1.0}), std::logic_error);
}

TEST(Histogram, QuantileInterpolationMatchesKnownInputs) {
  MetricsRegistry reg;
  // Buckets: (0,1], (1,2], (2,4], (4,8], (8,+Inf)
  Histogram& h = reg.histogram("lat", "", {}, {1.0, 2.0, 4.0, 8.0});
  // 10 observations in (0,1], 10 in (1,2].
  for (int i = 0; i < 10; ++i) h.observe(0.5);
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 20u);
  EXPECT_DOUBLE_EQ(s.sum, 10 * 0.5 + 10 * 1.5);
  // p50: target = 10 -> exactly fills the first bucket -> upper edge 1.0.
  EXPECT_DOUBLE_EQ(s.quantile(0.50), 1.0);
  // p25: target = 5 -> halfway through (0,1].
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 0.5);
  // p75: target = 15 -> halfway through (1,2] -> 1.5.
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 1.5);
  // p100 -> upper edge of the last populated bucket.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
}

TEST(Histogram, OverflowBucketReportsHighestFiniteBound) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", "", {}, {1.0, 2.0});
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 2.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", "", {}, {1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(StageTimer, RecordsExactlyOneObservation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("stage", "", {}, default_latency_buckets());
  {
    StageTimer t(h);
    const double secs = t.stop();
    EXPECT_GE(secs, 0.0);
    t.stop();  // idempotent
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  {
    StageTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Exposition, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("seqrtg_test_ops_total", "Operations", {{"op", "save"}})
      .inc(3);
  reg.counter("seqrtg_test_ops_total", "Operations", {{"op", "load"}})
      .inc(1);
  reg.gauge("seqrtg_test_backlog", "Pending items").set(7);
  Histogram& h =
      reg.histogram("seqrtg_test_seconds", "Latency", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string expected =
      "# HELP seqrtg_test_backlog Pending items\n"
      "# TYPE seqrtg_test_backlog gauge\n"
      "seqrtg_test_backlog 7\n"
      "# HELP seqrtg_test_ops_total Operations\n"
      "# TYPE seqrtg_test_ops_total counter\n"
      "seqrtg_test_ops_total{op=\"load\"} 1\n"
      "seqrtg_test_ops_total{op=\"save\"} 3\n"
      "# HELP seqrtg_test_seconds Latency\n"
      "# TYPE seqrtg_test_seconds histogram\n"
      "seqrtg_test_seconds_bucket{le=\"0.1\"} 2\n"
      "seqrtg_test_seconds_bucket{le=\"1\"} 3\n"
      "seqrtg_test_seconds_bucket{le=\"+Inf\"} 4\n"
      "seqrtg_test_seconds_sum 5.6\n"
      "seqrtg_test_seconds_count 4\n";
  EXPECT_EQ(to_prometheus(reg), expected);
  // Rendering twice round-trips byte-identically (golden stability).
  EXPECT_EQ(to_prometheus(reg), expected);
}

TEST(Exposition, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("c_total", "help").inc(5);
  Histogram& h = reg.histogram("h_seconds", "", {{"phase", "x"}}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);

  const util::Json doc = to_json(reg);
  const util::JsonParseResult parsed = util::json_parse(doc.dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const util::Json* metrics = parsed.value.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->as_array().size(), 2u);

  const util::Json& counter = metrics->as_array()[0];
  EXPECT_EQ(counter.get_string("name", ""), "c_total");
  EXPECT_DOUBLE_EQ(
      counter.find("instances")->as_array()[0].find("value")->as_number(),
      5.0);

  const util::Json& hist = metrics->as_array()[1];
  EXPECT_EQ(hist.get_string("type", ""), "histogram");
  const util::Json& inst = hist.find("instances")->as_array()[0];
  EXPECT_EQ(inst.find("count")->as_int(), 2);
  EXPECT_EQ(inst.find("labels")->get_string("phase", ""), "x");
  // p50 of {0.5, 1.5} with bounds {1,2}: target 1 fills bucket one -> 1.0.
  EXPECT_DOUBLE_EQ(inst.find("p50")->as_number(), 1.0);
}

TEST(Exposition, WriteMetricsFilePicksFormatByExtension) {
  MetricsRegistry reg;
  reg.counter("c_total").inc();
  const std::string base = ::testing::TempDir() + "seqrtg_metrics_test";
  ASSERT_TRUE(write_metrics_file(reg, base + ".json"));
  ASSERT_TRUE(write_metrics_file(reg, base + ".prom"));
  EXPECT_FALSE(write_metrics_file(reg, base + ".prom", "nonsense"));
  std::remove((base + ".json").c_str());
  std::remove((base + ".prom").c_str());
}

TEST(DefaultRegistry, InstrumentationIsRegistered) {
  // The instrumented modules register into the default registry on first
  // use; exercising a scan via the registry-reset path must keep handles
  // valid.
  EXPECT_NO_THROW(default_registry().counter(
      "seqrtg_scanner_messages_total"));
}

TEST(Telemetry, KillSwitchStopsRecording) {
  MetricsRegistry reg;
  Counter& c = reg.counter("guarded_total");
  const bool was_enabled = telemetry_enabled();
  set_telemetry_enabled(false);
  if (telemetry_enabled()) c.inc();
  set_telemetry_enabled(was_enabled);
  EXPECT_EQ(c.value(), 0u);
}

TEST(IngestTelemetry, AcceptedAndMalformedCountersAreWired) {
  // Every ingest surface (read_batch, the serve socket/stdin readers) goes
  // through parse_and_count_line, so the process-wide reject counter must
  // move in lockstep with IngestStats.
  Counter& accepted =
      default_registry().counter("seqrtg_ingest_accepted_total");
  Counter& malformed =
      default_registry().counter("seqrtg_ingest_malformed_total");
  const std::uint64_t accepted0 = accepted.value();
  const std::uint64_t malformed0 = malformed.value();

  std::istringstream in(
      "{\"service\":\"db\",\"message\":\"connection reset\"}\n"
      "not json at all\n"
      "\n"
      "{\"service\":\"db\"}\n"
      "{\"service\":\"db\",\"message\":\"query done\"}\n");
  core::JsonStreamIngester ingester(16);
  const std::vector<core::LogRecord> batch = ingester.read_batch(in);

  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(ingester.stats().accepted, 2u);
  EXPECT_EQ(ingester.stats().malformed, 2u);
  EXPECT_EQ(accepted.value() - accepted0, 2u);
  EXPECT_EQ(malformed.value() - malformed0, 2u);

  // The reject counter shows up in the Prometheus exposition by name (what
  // a scrape of the serve daemon's /metrics reports).
  const std::string prom = to_prometheus(default_registry());
  EXPECT_NE(prom.find("seqrtg_ingest_malformed_total"), std::string::npos);
}

TEST(Exposition, LabelValuesEscapeBackslashQuoteAndNewline) {
  // The Prometheus text format requires \\, \" and \n escapes inside label
  // values; a scraper must be able to parse values containing all three.
  MetricsRegistry reg;
  reg.counter("seqrtg_test_paths_total", "Paths",
              {{"path", "C:\\logs\\app"}})
      .inc(1);
  reg.counter("seqrtg_test_paths_total", "Paths",
              {{"path", "say \"hi\""}})
      .inc(2);
  reg.counter("seqrtg_test_paths_total", "Paths", {{"path", "two\nlines"}})
      .inc(3);
  const std::string prom = to_prometheus(reg);
  EXPECT_NE(prom.find("{path=\"C:\\\\logs\\\\app\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("{path=\"say \\\"hi\\\"\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("{path=\"two\\nlines\"} 3"), std::string::npos);
  // No raw newline may survive inside a sample line.
  EXPECT_EQ(prom.find("two\nlines"), std::string::npos);
}

TEST(Exposition, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.counter("seqrtg_test_help_total", "line one\nline two \\ done").inc();
  const std::string prom = to_prometheus(reg);
  EXPECT_NE(prom.find("# HELP seqrtg_test_help_total "
                      "line one\\nline two \\\\ done\n"),
            std::string::npos);
}

TEST(BuildInfo, GaugeAndProcessMetricsAreRegistered) {
  register_build_metrics();
  const std::string prom = to_prometheus(default_registry());
  // The identity gauge is constant 1 with the identity in the labels.
  EXPECT_NE(prom.find("seqrtg_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("version=\"" + std::string(build_info().version) +
                      "\""),
            std::string::npos);
  EXPECT_NE(prom.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(prom.find("seqrtg_process_start_time_seconds"),
            std::string::npos);
  EXPECT_NE(prom.find("seqrtg_process_uptime_seconds"), std::string::npos);

  const std::string line = build_info_string();
  EXPECT_NE(line.find("seqrtg "), std::string::npos);
  EXPECT_NE(line.find(build_info().git_describe), std::string::npos);

  // Start time is captured once: re-registering refreshes uptime but must
  // not move the start timestamp.
  Gauge& start =
      default_registry().gauge("seqrtg_process_start_time_seconds");
  const double first = start.value();
  EXPECT_GT(first, 0.0);
  register_build_metrics();
  EXPECT_EQ(start.value(), first);
}

}  // namespace
}  // namespace seqrtg::obs
