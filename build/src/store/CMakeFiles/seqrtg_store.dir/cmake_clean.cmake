file(REMOVE_RECURSE
  "CMakeFiles/seqrtg_store.dir/database.cpp.o"
  "CMakeFiles/seqrtg_store.dir/database.cpp.o.d"
  "CMakeFiles/seqrtg_store.dir/pattern_store.cpp.o"
  "CMakeFiles/seqrtg_store.dir/pattern_store.cpp.o.d"
  "CMakeFiles/seqrtg_store.dir/sql.cpp.o"
  "CMakeFiles/seqrtg_store.dir/sql.cpp.o.d"
  "CMakeFiles/seqrtg_store.dir/table.cpp.o"
  "CMakeFiles/seqrtg_store.dir/table.cpp.o.d"
  "CMakeFiles/seqrtg_store.dir/value.cpp.o"
  "CMakeFiles/seqrtg_store.dir/value.cpp.o.d"
  "libseqrtg_store.a"
  "libseqrtg_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqrtg_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
