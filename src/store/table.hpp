// Table: rows + schema + equality indexes for the embedded store.
//
// Rows live in an append-only arena with tombstone deletion so index entries
// (row ids) stay stable; compaction happens on save. One optional UNIQUE
// primary-key index plus any number of secondary (non-unique) equality
// indexes. This is deliberately a hash-index design: every query the
// pattern workflow issues is an equality lookup (by id, by service) or a
// full scan with ORDER BY, so B-trees would buy nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/value.hpp"

namespace seqrtg::store {

struct Column {
  std::string name;
  ValueType type = ValueType::Text;
};

struct Schema {
  std::vector<Column> columns;
  /// Index into `columns` of the PRIMARY KEY column; -1 when keyless.
  int primary_key = -1;

  int column_index(std::string_view name) const;
};

/// Stable row identifier within a table (arena slot).
using RowId = std::size_t;

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  std::size_t size() const { return live_count_; }

  /// Inserts a row (must match the schema arity; values are type-coerced is
  /// NOT performed — callers bind correct types). Fails (returns false)
  /// on primary-key violation.
  bool insert(Row row);

  /// Primary-key point lookup.
  std::optional<RowId> find_pk(const Value& key) const;

  /// Adds a secondary equality index over `column` (backfills existing
  /// rows). Returns false for unknown columns.
  bool add_index(std::string_view column);

  /// All live rows whose `column` equals `key`; uses an index when one
  /// exists, otherwise scans.
  std::vector<RowId> find_eq(std::string_view column, const Value& key) const;

  /// All live row ids in insertion order.
  std::vector<RowId> all_rows() const;

  const Row& row(RowId id) const { return *rows_[id]; }

  /// In-place update. Maintains indexes. Returns false when the primary
  /// key would collide.
  bool update_row(RowId id, Row new_values);

  void erase(RowId id);

  /// Live rows in insertion order (compacted view, used by persistence).
  std::vector<const Row*> snapshot() const;

 private:
  void index_row(RowId id);
  void unindex_row(RowId id);

  Schema schema_;
  std::vector<std::optional<Row>> rows_;
  std::size_t live_count_ = 0;
  /// pk encode() -> RowId.
  std::unordered_map<std::string, RowId> pk_index_;
  /// column -> (value encode() -> row ids).
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<RowId>>>
      secondary_;
};

}  // namespace seqrtg::store
