// parser_matching — using Sequence-RTG as a stand-alone parser.
//
// The paper notes "Sequence-RTG can also be used as a stand-alone product
// thanks to its own built-in parser". This example mines a pattern set from
// a training stream, then parses a second stream: matched messages get
// their pattern id and extracted fields ("it allows a small amount of
// information to be extracted from the message"), unmatched ones are
// flagged for mining.
#include <cstdio>

#include "core/analyze_by_service.hpp"
#include "core/parser.hpp"
#include "core/repository.hpp"
#include "loggen/fleet.hpp"
#include "util/rng.hpp"

using namespace seqrtg;

int main() {
  // Train on 20k messages from a 20-service fleet.
  loggen::FleetOptions fleet_opts;
  fleet_opts.services = 20;
  fleet_opts.seed = util::kDefaultSeed;
  loggen::FleetGenerator fleet(fleet_opts);

  core::InMemoryRepository repo;
  core::EngineOptions opts;
  core::Engine engine(&repo, opts);
  engine.analyze_by_service(fleet.take(20000));
  std::printf("trained: %zu patterns across %zu services\n\n",
              repo.pattern_count(), repo.services().size());

  core::Parser parser(opts.scanner, opts.special);
  for (const std::string& svc : repo.services()) {
    for (const core::Pattern& p : repo.load_service(svc)) {
      parser.add_pattern(p);
    }
  }

  // Parse fresh traffic; show the first few matches in detail.
  std::size_t matched = 0;
  std::size_t unmatched = 0;
  constexpr std::size_t kProbe = 5000;
  for (std::size_t i = 0; i < kProbe; ++i) {
    const core::LogRecord rec = fleet.next().record;
    const auto result = parser.parse(rec.service, rec.message);
    if (result) {
      ++matched;
      if (matched <= 3) {
        std::printf("message : %s\n", rec.message.c_str());
        std::printf("pattern : %s\n", result->pattern->text().c_str());
        std::printf("id      : %s\n", result->pattern->id().c_str());
        for (const auto& [name, value] : result->fields) {
          std::printf("  %%%s%% = %s\n", name.c_str(), value.c_str());
        }
        std::printf("\n");
      }
    } else {
      ++unmatched;
      if (unmatched <= 2) {
        std::printf("UNMATCHED (would be sent for mining): %s\n\n",
                    rec.message.c_str());
      }
    }
  }
  std::printf("parsed %zu fresh messages: %zu matched (%.1f%%), "
              "%zu unmatched\n",
              kProbe, matched,
              100.0 * static_cast<double>(matched) /
                  static_cast<double>(kProbe),
              unmatched);
  return 0;
}
