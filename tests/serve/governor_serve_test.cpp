// Admission control + governance surfaces of `seqrtg serve`
// (DESIGN.md §17):
//
//  - A governed run under a tiny ceiling spill-thrashes partitions through
//    the durable store yet mines exactly what an ungoverned run mines.
//  - When spilling cannot help (non-durable store), the governor flips
//    overloaded and serve sheds at admission with exact accounting:
//    accepted == processed + shed.
//  - /debug/governor and the /healthz governor block expose the stats.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/ingest.hpp"
#include "serve/server.hpp"
#include "store/pattern_store.hpp"
#include "testkit/canonical.hpp"
#include "util/clock.hpp"

namespace seqrtg::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("seqrtg_govserve_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

int connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string http_get(int port, const std::string& path) {
  const int fd = connect_local(port);
  if (fd < 0) return {};
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::string_view data = request;
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string corpus_stream(int records) {
  std::string payload;
  for (int i = 0; i < records; ++i) {
    const std::string service = "svc-" + std::to_string(i % 5);
    payload += core::record_to_json(
        {service, "unit " + std::to_string(i % 7) + " finished job " +
                      std::to_string(i) + " in " +
                      std::to_string(10 + i % 90) + " ms"});
    payload += '\n';
  }
  return payload;
}

/// Deterministic streaming shape (the mine_serve recipe): batch larger
/// than the corpus + pinned clock = every lane flushes exactly once at
/// drain, so spill thrash happens during the drain and never at admission.
ServeOptions deterministic_opts(util::Clock* clock, int records) {
  ServeOptions opts;
  opts.port = -1;
  opts.http_port = -1;
  opts.lanes = 2;
  opts.queue_capacity = static_cast<std::size_t>(records) + 1;
  opts.batch_size = static_cast<std::size_t>(records) + 1;
  opts.flush_interval_s = 1e9;
  opts.checkpoint_on_stop = false;
  opts.clock = clock;
  return opts;
}

TEST(GovernorServe, TinyCeilingSpillThrashMinesExactlyTheUngovernedSet) {
  constexpr int kRecords = 150;
  const std::string payload = corpus_stream(kRecords);

  TempDir dir("thrash");
  store::PatternStore governed_store;
  ASSERT_TRUE(governed_store.open(dir.path.string()));
  util::ManualClock governed_clock(1700000000);
  ServeOptions gopts = deterministic_opts(&governed_clock, kRecords);
  gopts.governor.ceiling_bytes = 1;  // everything must spill, constantly
  Server governed(&governed_store, gopts);
  std::string error;
  ASSERT_TRUE(governed.start(&error)) << error;
  std::istringstream gin(payload);
  governed.feed(gin);
  const ServeReport greport = governed.stop();
  const core::Governor::Stats gstats = governed.governor()->stats();

  EXPECT_EQ(greport.accepted, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(greport.processed, greport.accepted);
  EXPECT_EQ(greport.shed, 0u)
      << "admission precedes the drain, so a governed batch run never "
         "sheds";
  EXPECT_EQ(greport.dropped, 0u);
  EXPECT_GT(gstats.spills, 0u) << "a 1-byte ceiling must spill-thrash";

  store::PatternStore plain_store;
  util::ManualClock plain_clock(1700000000);
  ServeOptions popts = deterministic_opts(&plain_clock, kRecords);
  Server plain(&plain_store, popts);
  ASSERT_TRUE(plain.start(&error)) << error;
  std::istringstream pin(payload);
  plain.feed(pin);
  plain.stop();

  EXPECT_EQ(testkit::canonical_patterns(governed_store),
            testkit::canonical_patterns(plain_store))
      << "governance must be output-transparent";
}

TEST(GovernorServe, OverloadShedsAtAdmissionWithExactAccounting) {
  // Non-durable store: spilling has nowhere to go, so the first enforce
  // after the ceiling is crossed flips overloaded and admission sheds.
  store::PatternStore store;
  ServeOptions opts;
  opts.port = -1;
  opts.http_port = -1;
  opts.lanes = 1;
  opts.batch_size = 4;  // flush as soon as the first four records arrive
  opts.flush_interval_s = 1e9;
  opts.governor.ceiling_bytes = 1;
  Server server(&store, opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::string first;
  for (int i = 0; i < 4; ++i) {
    first += core::record_to_json(
        {"svc", "request " + std::to_string(i) + " served"});
    first += '\n';
  }
  std::istringstream in_first(first);
  server.feed(in_first);
  ASSERT_TRUE(server.wait_until([&] {
    return server.processed() == 4 && server.governor()->overloaded();
  })) << "the flush's safe point must report overload when nothing can "
         "spill";

  std::string second;
  for (int i = 0; i < 3; ++i) {
    second += core::record_to_json(
        {"svc", "request " + std::to_string(100 + i) + " served"});
    second += '\n';
  }
  std::istringstream in_second(second);
  server.feed(in_second);
  EXPECT_EQ(server.shed(), 3u) << "overloaded admission sheds every record";

  const ServeReport report = server.stop();
  EXPECT_EQ(report.shed, 3u);
  EXPECT_EQ(report.processed, 4u);
  EXPECT_EQ(report.accepted, 7u);
  EXPECT_EQ(report.accepted, report.processed + report.shed)
      << "the governance accounting identity";
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(server.governor()->stats().sheds, 3u);
}

TEST(GovernorServe, DebugEndpointAndHealthExposeGovernorState) {
  TempDir dir("debug");
  store::PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  ServeOptions opts;
  opts.port = 0;
  opts.http_port = 0;
  opts.lanes = 1;
  opts.batch_size = 2;
  opts.flush_interval_s = 1e9;
  opts.governor.ceiling_bytes = 4 << 20;
  Server server(&store, opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_local(server.ingest_port());
  ASSERT_GE(fd, 0);
  const std::string lines =
      core::record_to_json({"web", "request served in 12 ms"}) + "\n" +
      core::record_to_json({"web", "request served in 34 ms"}) + "\n";
  std::string_view data = lines;
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  ::close(fd);
  ASSERT_TRUE(server.wait_until([&] { return server.processed() == 2; }));

  const std::string debug = http_get(server.http_port(), "/debug/governor");
  EXPECT_NE(debug.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(debug.find("\"ceiling_bytes\":4194304"), std::string::npos);
  EXPECT_NE(debug.find("\"resident_bytes\":"), std::string::npos);
  EXPECT_NE(debug.find("\"spills\":"), std::string::npos);
  EXPECT_NE(debug.find("\"overloaded\":false"), std::string::npos);

  const std::string health = server.health_json();
  EXPECT_NE(health.find("\"shed\":0"), std::string::npos);
  EXPECT_NE(health.find("\"governor\":{"), std::string::npos);
  EXPECT_NE(health.find("\"resident_partitions\":"), std::string::npos);

  server.stop();
}

}  // namespace
}  // namespace seqrtg::serve
