// ISSUE 9 tests for the sharded cluster: the consistent-hash ring, the
// binary wire protocol, the router + shard-node end-to-end path over real
// loopback sockets, WAL-shipping replication to a hot standby, in-process
// failover, and the latched wedged-replication loss accounting.
#include "serve/cluster.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/ingest.hpp"
#include "serve/cluster_proto.hpp"
#include "serve/ring.hpp"
#include "serve/router.hpp"
#include "store/pattern_store.hpp"
#include "testkit/canonical.hpp"
#include "testkit/oracles.hpp"
#include "testkit/scenario.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace seqrtg::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory (removed by the destructor).
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("seqrtg_cluster_" + tag + "_" +
            std::to_string(::getpid() + std::hash<std::string>{}(tag) % 997));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

// ---------------------------------------------------------------- ring --

TEST(HashRing, PureFunctionAgreesAcrossInstances) {
  const HashRing a(3);
  const HashRing b(3);
  for (int i = 0; i < 200; ++i) {
    const std::string service = "service-" + std::to_string(i);
    EXPECT_EQ(a.shard_for(service), b.shard_for(service)) << service;
    EXPECT_EQ(cluster_hash64(service), cluster_hash64(service));
  }
  EXPECT_NE(cluster_hash64("alpha"), cluster_hash64("beta"));
}

TEST(HashRing, EveryShardOwnsAFairShare) {
  const HashRing ring(4);
  std::map<std::size_t, int> owned;
  constexpr int kServices = 2000;
  for (int i = 0; i < kServices; ++i) {
    ++owned[ring.shard_for("svc-" + std::to_string(i))];
  }
  ASSERT_EQ(owned.size(), 4u) << "some shard owns nothing";
  for (const auto& [shard, count] : owned) {
    // 64 vnodes/shard keeps the spread well inside 2x of fair.
    EXPECT_GT(count, kServices / 4 / 2) << "shard " << shard;
    EXPECT_LT(count, kServices / 4 * 2) << "shard " << shard;
  }
}

TEST(HashRing, GrowingTheRingMovesOnlyAFraction) {
  const HashRing three(3);
  const HashRing four(4);
  int moved = 0;
  constexpr int kServices = 2000;
  for (int i = 0; i < kServices; ++i) {
    const std::string service = "svc-" + std::to_string(i);
    const std::size_t before = three.shard_for(service);
    const std::size_t after = four.shard_for(service);
    if (after != before) {
      // Consistent hashing: a service either stays put or lands on the
      // NEW shard — growth never shuffles load between surviving shards.
      EXPECT_EQ(after, 3u) << service;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kServices / 2);
}

// --------------------------------------------------------------- proto --

TEST(ClusterProto, AllFrameTypesRoundTrip) {
  std::string stream = cluster_stream_header();
  stream += encode_hello(kPeerRouter, "router-7");
  stream += encode_record({"auth", "login from 10.0.0.1 failed"});
  stream += encode_wal_group(42, "I|auth|pattern ops blob");
  stream += encode_ack(9001);

  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  ASSERT_TRUE(decoder.feed(stream, &frames));
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.pending_bytes(), 0u);

  EXPECT_EQ(frames[0].type, ClusterFrameType::kHello);
  EXPECT_EQ(frames[0].role, kPeerRouter);
  EXPECT_EQ(frames[0].node_id, "router-7");
  EXPECT_EQ(frames[1].type, ClusterFrameType::kRecord);
  EXPECT_EQ(frames[1].record.service, "auth");
  EXPECT_EQ(frames[1].record.message, "login from 10.0.0.1 failed");
  EXPECT_EQ(frames[2].type, ClusterFrameType::kWalGroup);
  EXPECT_EQ(frames[2].seq, 42u);
  EXPECT_EQ(frames[2].ops, "I|auth|pattern ops blob");
  EXPECT_EQ(frames[3].type, ClusterFrameType::kAck);
  EXPECT_EQ(frames[3].count, 9001u);
}

TEST(ClusterProto, ByteAtATimeFeedDecodesIdentically) {
  std::string stream = cluster_stream_header();
  stream += encode_record({"svc", "hello world"});
  stream += encode_wal_group(7, "ops");

  ClusterFrameDecoder bulk;
  std::vector<ClusterFrame> bulk_frames;
  ASSERT_TRUE(bulk.feed(stream, &bulk_frames));

  ClusterFrameDecoder dribble;
  std::vector<ClusterFrame> dribble_frames;
  for (const char byte : stream) {
    ASSERT_TRUE(dribble.feed(std::string_view(&byte, 1), &dribble_frames));
  }
  ASSERT_EQ(dribble_frames.size(), bulk_frames.size());
  EXPECT_EQ(dribble.frames(), bulk.frames());
  EXPECT_EQ(dribble.pending_bytes(), 0u);
  for (std::size_t i = 0; i < bulk_frames.size(); ++i) {
    EXPECT_EQ(dribble_frames[i].type, bulk_frames[i].type) << i;
    EXPECT_EQ(dribble_frames[i].record, bulk_frames[i].record) << i;
    EXPECT_EQ(dribble_frames[i].ops, bulk_frames[i].ops) << i;
  }
}

TEST(ClusterProto, VersionSkewPoisonsWithDistinctError) {
  std::string header = cluster_stream_header();
  header[8] = 9;  // little-endian version word: 9 instead of 1
  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  EXPECT_FALSE(decoder.feed(header + encode_ack(1), &frames));
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("version"), std::string::npos)
      << decoder.error();
  EXPECT_TRUE(frames.empty());
}

TEST(ClusterProto, OversizedDeclaredLengthPoisonsImmediately) {
  std::string stream = cluster_stream_header();
  // A 512 MiB declared length with only the 8-byte frame header on the
  // wire: the decoder must reject on the declaration, not buffer toward it.
  const std::uint32_t huge = 512u << 20;
  stream.append(reinterpret_cast<const char*>(&huge), 4);
  stream.append("\0\0\0\0", 4);  // CRC word — never reached
  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  EXPECT_FALSE(decoder.feed(stream, &frames));
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("oversized"), std::string::npos)
      << decoder.error();
}

TEST(ClusterProto, CrcCorruptionPoisonsAndLatches) {
  std::string stream = cluster_stream_header();
  std::string frame = encode_record({"svc", "payload"});
  frame.back() ^= 0x5a;  // corrupt the payload under an intact CRC
  stream += frame;
  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  EXPECT_FALSE(decoder.feed(stream, &frames));
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_TRUE(frames.empty());
  // Latched: a perfectly valid follow-up frame decodes nothing.
  EXPECT_FALSE(decoder.feed(encode_ack(1), &frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(decoder.frames(), 0u);
}

TEST(ClusterProto, TruncatedFrameLeavesPendingBytesNotPoison) {
  std::string stream = cluster_stream_header();
  const std::string frame = encode_record({"svc", "cut short"});
  stream += frame.substr(0, frame.size() - 3);
  ClusterFrameDecoder decoder;
  std::vector<ClusterFrame> frames;
  EXPECT_TRUE(decoder.feed(stream, &frames));
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_TRUE(frames.empty());
  // EOF now would mean the peer died mid-write; the connection handler
  // turns the non-zero pending count into a malformed-stream count.
  EXPECT_GT(decoder.pending_bytes(), 0u);
}

// --------------------------------------------------- metrics aggregation --

TEST(AggregateExpositions, SumsSeriesAndKeepsHeaders) {
  const std::string a =
      "# HELP seqrtg_x_total X things\n"
      "# TYPE seqrtg_x_total counter\n"
      "seqrtg_x_total 3\n"
      "seqrtg_y_total{lane=\"0\"} 10\n";
  const std::string b =
      "# HELP seqrtg_x_total X things\n"
      "# TYPE seqrtg_x_total counter\n"
      "seqrtg_x_total 4\n"
      "seqrtg_y_total{lane=\"0\"} 2\n"
      "seqrtg_only_in_b_total 1\n";
  const std::string merged = aggregate_expositions({a, b});
  EXPECT_NE(merged.find("# HELP seqrtg_x_total X things\n"),
            std::string::npos);
  EXPECT_NE(merged.find("seqrtg_x_total 7\n"), std::string::npos);
  EXPECT_NE(merged.find("seqrtg_y_total{lane=\"0\"} 12\n"),
            std::string::npos);
  EXPECT_NE(merged.find("seqrtg_only_in_b_total 1\n"), std::string::npos);
}

TEST(AggregateExpositions, SingleBodyPassesThrough) {
  const std::string a = "# TYPE t counter\nt 5\n";
  EXPECT_EQ(aggregate_expositions({a}), a);
  EXPECT_EQ(aggregate_expositions({}), "");
}

// ------------------------------------------------------------ end-to-end --

std::vector<core::LogRecord> mixed_corpus(std::size_t records) {
  testkit::ScenarioOptions opts;
  opts.datasets = {"HDFS", "Linux", "Apache", "Zookeeper"};
  opts.records = records;
  return testkit::compose_corpus(opts);
}

TEST(Cluster, ThreeNodeMiningMatchesSingleEngineByteForByte) {
  const std::vector<core::LogRecord> corpus = mixed_corpus(600);
  const core::EngineOptions engine;
  const testkit::MiningResult single = testkit::mine_engine(corpus, engine);
  testkit::ClusterConfig config;
  config.nodes = 3;
  const testkit::MiningResult clustered =
      testkit::mine_cluster(corpus, engine, config);
  ASSERT_TRUE(clustered.started) << clustered.canonical;
  EXPECT_EQ(clustered.forwarded, corpus.size());
  EXPECT_EQ(clustered.undeliverable, 0u);
  EXPECT_EQ(clustered.accepted, corpus.size());
  EXPECT_EQ(clustered.processed, corpus.size());
  EXPECT_EQ(clustered.dropped, 0u);
  EXPECT_EQ(clustered.canonical, single.canonical)
      << testkit::first_diff(single.canonical, clustered.canonical);
}

TEST(Cluster, MisrouteSplitsAServiceAndTheMergedCanonicalBetraysIt) {
  const std::vector<core::LogRecord> corpus = mixed_corpus(400);
  const core::EngineOptions engine;
  const testkit::MiningResult single = testkit::mine_engine(corpus, engine);
  testkit::ClusterConfig config;
  config.nodes = 3;
  config.route_fault = [](std::uint64_t index) { return index == 37; };
  const testkit::MiningResult clustered =
      testkit::mine_cluster(corpus, engine, config);
  ASSERT_TRUE(clustered.started) << clustered.canonical;
  // The misrouted record is still forwarded and processed — every
  // accounting check stays green. Only the merged canonical catches it.
  EXPECT_EQ(clustered.forwarded, corpus.size());
  EXPECT_EQ(clustered.processed, corpus.size());
  EXPECT_NE(clustered.canonical, single.canonical)
      << "a misrouted service went unnoticed by the merged canonical";
}

/// One durable ClusterNode with the deterministic serve recipe: tiny
/// batches (so each flush is one shippable commit group) and a pinned
/// manual clock (so flushes happen ONLY on batch-size boundaries).
struct NodeHarness {
  explicit NodeHarness(const std::string& tag, int ship_to = -1,
                       std::function<bool(std::uint64_t)> ship_fault = {},
                       std::size_t batch_size = 8)
      : dir(tag) {
    EXPECT_TRUE(store.open(dir.path.string()));
    ClusterNodeOptions opts;
    opts.serve.port = -1;
    opts.serve.http_port = -1;
    opts.serve.lanes = 1;
    opts.serve.queue_capacity = 4096;
    opts.serve.batch_size = batch_size;
    opts.serve.flush_interval_s = 1e9;
    opts.serve.checkpoint_on_stop = false;
    opts.serve.clock = &clock;
    opts.cluster_port = 0;
    opts.ship_to = ship_to;
    opts.node_id = tag;
    opts.ship_fault = std::move(ship_fault);
    node = std::make_unique<ClusterNode>(&store, std::move(opts));
  }
  TempDir dir;
  store::PatternStore store;
  util::ManualClock clock;
  std::unique_ptr<ClusterNode> node;
};

/// Routes `count` records of `service` through `router`, one JSON line
/// each (distinct messages per batch keep every commit group non-empty).
void route_wave(Router& router, const std::string& service,
                std::size_t count, std::size_t offset = 0) {
  for (std::size_t i = 0; i < count; ++i) {
    router.route_record(
        {service, "wave event " + std::to_string(offset + i) +
                      " from host-" + std::to_string(i % 4)});
  }
}

TEST(Cluster, WalShippingKeepsTheStandbyByteIdenticalToThePrimary) {
  NodeHarness standby("standby_sync");
  std::string error;
  ASSERT_TRUE(standby.node->start(&error)) << error;
  NodeHarness primary("primary_sync", standby.node->cluster_port());
  ASSERT_TRUE(primary.node->start(&error)) << error;

  RouterOptions ropts;
  ropts.shards = {primary.node->cluster_port()};
  Router router(std::move(ropts));
  ASSERT_TRUE(router.start(&error)) << error;

  route_wave(router, "alpha", 32);
  ASSERT_TRUE(primary.node->wait_until([&] {
    return primary.node->server().processed() >= 32;
  })) << "primary never processed the wave";
  const ClusterNodeStats shipped = primary.node->stats();
  EXPECT_EQ(shipped.groups_shipped, 4u);  // 32 records / batch 8
  EXPECT_EQ(shipped.groups_lost, 0u);
  ASSERT_TRUE(standby.node->wait_until([&] {
    return standby.node->stats().groups_applied >= shipped.groups_shipped;
  })) << "standby never applied the shipped groups";

  router.stop();
  primary.node->stop();
  standby.node->stop();

  // The replicated store mirrors the primary exactly — same patterns,
  // same match counts, same WAL sequence numbering.
  EXPECT_EQ(testkit::canonical_patterns(standby.store),
            testkit::canonical_patterns(primary.store));
  EXPECT_EQ(standby.node->stats().last_applied_seq,
            shipped.groups_shipped);
}

TEST(Cluster, FailoverToStandbyLosesNothingAndKeepsMining) {
  NodeHarness standby("standby_takeover");
  std::string error;
  ASSERT_TRUE(standby.node->start(&error)) << error;
  NodeHarness primary("primary_takeover", standby.node->cluster_port());
  ASSERT_TRUE(primary.node->start(&error)) << error;

  RouterOptions ropts;
  ropts.shards = {primary.node->cluster_port()};
  ropts.standbys = {standby.node->cluster_port()};
  Router router(std::move(ropts));
  ASSERT_TRUE(router.start(&error)) << error;

  route_wave(router, "alpha", 32);
  ASSERT_TRUE(primary.node->wait_until([&] {
    return primary.node->server().processed() >= 32;
  }));
  const std::uint64_t shipped = primary.node->stats().groups_shipped;
  ASSERT_TRUE(standby.node->wait_until([&] {
    return standby.node->stats().groups_applied >= shipped;
  }));

  // The primary dies; the next send probes the dead link and promotes the
  // standby — once, permanently.
  primary.node->stop();
  route_wave(router, "beta", 16);
  EXPECT_EQ(router.failovers(), 1u);
  EXPECT_EQ(router.undeliverable(), 0u);
  ASSERT_TRUE(standby.node->wait_until([&] {
    return standby.node->stats().records >= 16;
  })) << "standby never received the post-failover wave";
  const RouterReport routed = router.stop();
  EXPECT_EQ(routed.forwarded, 48u);
  standby.node->stop();

  // Zero pattern loss: everything the primary committed (service alpha)
  // survives on the standby byte-for-byte, and the takeover kept mining
  // (service beta exists only there).
  const std::string primary_rows = testkit::canonical_patterns(primary.store);
  const std::string standby_rows = testkit::canonical_patterns(standby.store);
  std::string standby_alpha;
  std::istringstream lines(standby_rows);
  std::string line;
  bool saw_beta = false;
  while (std::getline(lines, line)) {
    if (line.rfind("alpha\t", 0) == 0) standby_alpha += line + "\n";
    if (line.rfind("beta\t", 0) == 0) saw_beta = true;
  }
  EXPECT_EQ(standby_alpha, primary_rows)
      << testkit::first_diff(primary_rows, standby_alpha);
  EXPECT_TRUE(saw_beta) << "the standby stopped mining after takeover";
}

TEST(Cluster, WedgedReplicationCountsEveryLostGroupExactly) {
  NodeHarness standby("standby_wedge");
  std::string error;
  ASSERT_TRUE(standby.node->start(&error)) << error;
  // The scripted fault wedges shipping at commit group #1 (0-based): the
  // first group ships, everything after it is lost — and counted.
  NodeHarness primary("primary_wedge", standby.node->cluster_port(),
                      [](std::uint64_t group) { return group == 1; });
  ASSERT_TRUE(primary.node->start(&error)) << error;

  RouterOptions ropts;
  ropts.shards = {primary.node->cluster_port()};
  Router router(std::move(ropts));
  ASSERT_TRUE(router.start(&error)) << error;
  // 5 batches of 8; give each batch its own service so every flush surely
  // creates patterns (a non-empty commit group).
  for (int batch = 0; batch < 5; ++batch) {
    route_wave(router, "svc-" + std::to_string(batch), 8,
               static_cast<std::size_t>(batch) * 100);
  }
  ASSERT_TRUE(primary.node->wait_until([&] {
    return primary.node->server().processed() >= 40;
  }));
  router.stop();
  primary.node->stop();
  standby.node->stop();

  const ClusterNodeStats stats = primary.node->stats();
  EXPECT_TRUE(stats.ship_wedged);
  EXPECT_EQ(stats.groups_shipped, 1u);
  EXPECT_EQ(stats.groups_lost, 4u);
  EXPECT_EQ(standby.node->stats().groups_applied, 1u);
}

TEST(Cluster, RouterHealthAggregatesShardsAndFlagsDegradation) {
  util::ManualClock clock;
  store::PatternStore store;
  ClusterNodeOptions nopts;
  nopts.serve.port = -1;
  nopts.serve.http_port = 0;  // kernel-assigned: the router scrapes it
  nopts.serve.lanes = 1;
  nopts.serve.clock = &clock;
  nopts.cluster_port = 0;
  ClusterNode node(&store, std::move(nopts));
  std::string error;
  ASSERT_TRUE(node.start(&error)) << error;

  RouterOptions ropts;
  ropts.shards = {node.cluster_port()};
  ropts.shard_http = {node.server().http_port()};
  Router router(std::move(ropts));
  ASSERT_TRUE(router.start(&error)) << error;

  route_wave(router, "svc", 3);
  ASSERT_TRUE(node.wait_until(
      [&] { return node.stats().records >= 3; }));

  const std::string health = router.health_json();
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  // The shard's own health document is embedded, not paraphrased.
  EXPECT_NE(health.find("\"lanes\":1"), std::string::npos) << health;
  // Counters live in the process-global registry (shared across tests),
  // so assert series presence, not absolute values.
  const std::string metrics = router.metrics_text();
  EXPECT_NE(metrics.find("seqrtg_router_forwarded_total"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("seqrtg_cluster_records_total"), std::string::npos)
      << metrics;

  // Kill the shard: with no standby the shard goes dead, records become
  // undeliverable, and /healthz degrades.
  node.stop();
  route_wave(router, "svc", 2);
  EXPECT_EQ(router.undeliverable(), 2u);
  const std::string degraded = router.health_json();
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos)
      << degraded;
  router.stop();
}

}  // namespace
}  // namespace seqrtg::serve
