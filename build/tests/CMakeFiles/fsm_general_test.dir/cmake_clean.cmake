file(REMOVE_RECURSE
  "CMakeFiles/fsm_general_test.dir/core/fsm_general_test.cpp.o"
  "CMakeFiles/fsm_general_test.dir/core/fsm_general_test.cpp.o.d"
  "fsm_general_test"
  "fsm_general_test.pdb"
  "fsm_general_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_general_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
