// Monotonic wall-clock stopwatch used by the benchmark harness.
#pragma once

#include <chrono>

namespace seqrtg::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace seqrtg::util
