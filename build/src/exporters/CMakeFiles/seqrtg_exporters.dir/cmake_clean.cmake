file(REMOVE_RECURSE
  "CMakeFiles/seqrtg_exporters.dir/exporter.cpp.o"
  "CMakeFiles/seqrtg_exporters.dir/exporter.cpp.o.d"
  "CMakeFiles/seqrtg_exporters.dir/patterndb_import.cpp.o"
  "CMakeFiles/seqrtg_exporters.dir/patterndb_import.cpp.o.d"
  "libseqrtg_exporters.a"
  "libseqrtg_exporters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqrtg_exporters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
