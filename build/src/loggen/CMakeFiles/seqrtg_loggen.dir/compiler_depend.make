# Empty compiler generated dependencies file for seqrtg_loggen.
# This may be replaced when dependencies are built.
