file(REMOVE_RECURSE
  "CMakeFiles/special_tokens_test.dir/core/special_tokens_test.cpp.o"
  "CMakeFiles/special_tokens_test.dir/core/special_tokens_test.cpp.o.d"
  "special_tokens_test"
  "special_tokens_test.pdb"
  "special_tokens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_tokens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
