// ISSUE 5 acceptance tests for the differential/metamorphic oracles:
//
//  1. The differential oracle (Engine vs AnalyzeByService vs serve) passes
//     on all 16 LogHub golden corpora for three distinct seeds.
//  2. A deliberately injected divergence — a scripted queue drop in the
//     serve path — is CAUGHT, deterministically, and the scenario runner
//     shrinks the corpus to a minimal failing set and prints a repro.
//  3. The metamorphic oracles (soundness, idempotence, service-preserving
//     interleave invariance) hold on mixed multi-service corpora.
#include "testkit/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "loggen/corpus.hpp"
#include "testkit/oracles.hpp"
#include "util/rng.hpp"

namespace seqrtg::testkit {
namespace {

constexpr std::uint64_t kSeeds[] = {util::kDefaultSeed,
                                    util::kDefaultSeed + 1,
                                    util::kDefaultSeed + 2};

class DifferentialGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialGolden, ThreePathsAgreeAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    ScenarioOptions opts;
    opts.seed = seed;
    opts.datasets = {GetParam()};
    opts.records = 400;
    const std::vector<core::LogRecord> corpus = compose_corpus(opts);
    ASSERT_EQ(corpus.size(), opts.records);
    const OracleVerdict verdict =
        check_differential(corpus, opts.engine, {});
    EXPECT_FALSE(verdict.has_value())
        << verdict->oracle << " on seed " << seed << ":\n"
        << verdict->detail << "\nrepro: " << repro_command(opts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLogHubCorpora, DifferentialGolden,
    ::testing::Values("HDFS", "Hadoop", "Spark", "Zookeeper", "BGL", "HPC",
                      "Thunderbird", "Windows", "Linux", "Mac", "Android",
                      "HealthApp", "Apache", "Proxifier", "OpenSSH",
                      "OpenStack"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      return std::string(param_info.param);
    });

// ISSUE 9 acceptance: sharding by service hash is correctness-preserving.
// Every LogHub corpus, three seeds, streamed through a real router + 3
// shard nodes over the binary transport — the merged canonical must be
// byte-identical to the single-engine one.
class ClusterDifferentialGolden
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterDifferentialGolden, OneNodeAndThreeNodesAgreeAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    ScenarioOptions opts;
    opts.seed = seed;
    opts.datasets = {GetParam()};
    opts.records = 400;
    opts.fault = *FaultPlan::parse("cluster@3");
    const std::vector<core::LogRecord> corpus = compose_corpus(opts);
    ASSERT_EQ(corpus.size(), opts.records);
    DifferentialOptions dopts;
    dopts.cluster_nodes = 3;
    const OracleVerdict verdict =
        check_differential(corpus, opts.engine, dopts);
    EXPECT_FALSE(verdict.has_value())
        << verdict->oracle << " on seed " << seed << ":\n"
        << verdict->detail << "\nrepro: " << repro_command(opts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLogHubCorpora, ClusterDifferentialGolden,
    ::testing::Values("HDFS", "Hadoop", "Spark", "Zookeeper", "BGL", "HPC",
                      "Thunderbird", "Windows", "Linux", "Mac", "Android",
                      "HealthApp", "Apache", "Proxifier", "OpenSSH",
                      "OpenStack"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      return std::string(param_info.param);
    });

// The mutation test of the cluster oracle itself: a scripted misroute of
// record #37 sends one record of a service to the wrong shard. Every
// accounting check stays green (the record IS forwarded and processed) —
// only the merged canonical can catch it, so the scenario MUST fail on
// the engine-vs-cluster diff, replay deterministically, and shrink.
TEST(OracleMutation, InjectedMisrouteIsCaughtShrunkAndReplayable) {
  ScenarioOptions opts;
  opts.datasets = {"HDFS"};
  opts.records = 400;
  opts.fault = *FaultPlan::parse("cluster@3;misroute@37");
  opts.run_soundness = false;
  opts.run_idempotence = false;
  opts.run_interleave = false;

  const ScenarioResult first = run_scenario(opts);
  ASSERT_FALSE(first.ok) << "the oracle missed an injected misroute";
  EXPECT_EQ(first.oracle, "differential:engine-vs-cluster");
  EXPECT_NE(first.repro.find("misroute@37"), std::string::npos)
      << first.repro;

  const ScenarioResult second = run_scenario(opts);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.oracle, first.oracle);
  EXPECT_EQ(second.detail, first.detail);

  // Shrunk corpus: strictly smaller, still failing the same oracle. The
  // misroute needs record #37 to exist, so 38 records is the floor.
  ASSERT_FALSE(first.shrunk.empty());
  EXPECT_LT(first.shrunk.size(), first.corpus_size);
  EXPECT_GE(first.shrunk.size(), 38u);
  DifferentialOptions dopts;
  dopts.threads = opts.threads;
  dopts.lanes = opts.lanes;
  dopts.cluster_nodes = 3;
  dopts.cluster_route_fault = opts.fault.route_hook();
  const OracleVerdict shrunk_verdict =
      check_differential(first.shrunk, opts.engine, dopts);
  ASSERT_TRUE(shrunk_verdict.has_value());
  EXPECT_EQ(shrunk_verdict->oracle, first.oracle);
}

TEST(FaultPlanGrammar, ClusterAndMisrouteDirectivesRoundTrip) {
  const auto plan = FaultPlan::parse("cluster@3;misroute@7;misroute@2");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cluster_nodes, 3u);
  EXPECT_EQ(plan->misroute_at, (std::vector<std::uint64_t>{2, 7}));
  EXPECT_EQ(plan->to_string(), "cluster@3;misroute@2;misroute@7");
  const auto hook = plan->route_hook();
  ASSERT_TRUE(static_cast<bool>(hook));
  EXPECT_TRUE(hook(2));
  EXPECT_TRUE(hook(7));
  EXPECT_FALSE(hook(3));

  std::string error;
  EXPECT_FALSE(FaultPlan::parse("cluster@0", &error).has_value());
  EXPECT_NE(error.find("cluster"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("misroute@x", &error).has_value());
}

TEST(Differential, MixedServiceScenarioPassesEveryOracle) {
  ScenarioOptions opts;
  opts.datasets = {"HDFS", "Linux", "Apache", "Zookeeper"};
  opts.records = 800;
  const ScenarioResult result = run_scenario(opts);
  EXPECT_TRUE(result.ok) << result.oracle << ":\n"
                         << result.detail << "\nrepro: " << result.repro;
  EXPECT_EQ(result.corpus_size, opts.records);
}

TEST(Differential, ComposedCorpusIsDeterministicPerSeed) {
  ScenarioOptions opts;
  opts.datasets = {"HDFS", "Linux"};
  opts.records = 120;
  const std::vector<core::LogRecord> a = compose_corpus(opts);
  const std::vector<core::LogRecord> b = compose_corpus(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
  opts.seed += 1;
  const std::vector<core::LogRecord> c = compose_corpus(opts);
  EXPECT_NE(a, c) << "distinct seeds must compose distinct corpora";
}

// The mutation test of the harness itself: a scripted drop of record #37
// in the serve path is an injected divergence, so the scenario MUST fail,
// the failure MUST replay bit-identically from the same options, and the
// shrinker must hand back a smaller corpus that still trips the oracle.
TEST(OracleMutation, InjectedServeDropIsCaughtShrunkAndReplayable) {
  ScenarioOptions opts;
  opts.datasets = {"HDFS"};
  opts.records = 400;
  opts.fault = *FaultPlan::parse("drop@37");
  opts.run_soundness = false;
  opts.run_idempotence = false;
  opts.run_interleave = false;

  const ScenarioResult first = run_scenario(opts);
  ASSERT_FALSE(first.ok) << "the oracle missed an injected divergence";
  EXPECT_EQ(first.oracle, "differential:serve-accounting");
  EXPECT_NE(first.repro.find("--fault 'drop@37'"), std::string::npos)
      << first.repro;
  EXPECT_NE(first.repro.find("--seed"), std::string::npos);

  // Deterministic: the same options reproduce the same verdict.
  const ScenarioResult second = run_scenario(opts);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.oracle, first.oracle);
  EXPECT_EQ(second.detail, first.detail);

  // Shrunk corpus: strictly smaller, still failing the same oracle. The
  // minimum for drop@37 to fire is 38 records.
  ASSERT_FALSE(first.shrunk.empty());
  EXPECT_LT(first.shrunk.size(), first.corpus_size);
  EXPECT_GE(first.shrunk.size(), 38u);
  DifferentialOptions dopts;
  dopts.threads = opts.threads;
  dopts.lanes = opts.lanes;
  dopts.serve_queue_fault = opts.fault.queue_hook();
  const OracleVerdict shrunk_verdict =
      check_differential(first.shrunk, opts.engine, dopts);
  ASSERT_TRUE(shrunk_verdict.has_value());
  EXPECT_EQ(shrunk_verdict->oracle, first.oracle);
}

TEST(Metamorphic, SoundnessIdempotenceAndInterleaveHold) {
  ScenarioOptions opts;
  opts.datasets = {"OpenSSH", "Proxifier"};
  opts.records = 300;
  const std::vector<core::LogRecord> corpus = compose_corpus(opts);
  EXPECT_FALSE(check_soundness(corpus, opts.engine).has_value());
  EXPECT_FALSE(check_idempotence(corpus, opts.engine).has_value());
  EXPECT_FALSE(check_interleave_invariance(corpus, opts.engine,
                                           util::kDefaultSeed ^ 0xabcdefULL)
                   .has_value());
}

TEST(Scenario, UnknownDatasetFailsFastWithConfigOracle) {
  ScenarioOptions opts;
  opts.datasets = {"NoSuchDataset"};
  const ScenarioResult result = run_scenario(opts);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.oracle, "config");
}

TEST(Scenario, ShrinkFailingIsBoundedAndKeepsFailureReproducible) {
  // Synthetic predicate: fails whenever the corpus still contains the
  // "poison" message. ddmin must isolate it (or at worst return a superset
  // that still fails) without exceeding the probe budget.
  std::vector<core::LogRecord> records;
  for (int i = 0; i < 64; ++i) {
    records.push_back({"svc", "benign message " + std::to_string(i)});
  }
  records.push_back({"svc", "poison"});
  for (int i = 0; i < 63; ++i) {
    records.push_back({"svc", "benign tail " + std::to_string(i)});
  }
  std::size_t probes = 0;
  const auto still_fails = [&](const std::vector<core::LogRecord>& subset) {
    ++probes;
    for (const core::LogRecord& r : subset) {
      if (r.message == "poison") return true;
    }
    return false;
  };
  const std::vector<core::LogRecord> shrunk =
      shrink_failing(records, still_fails, 64);
  ASSERT_FALSE(shrunk.empty());
  EXPECT_LE(probes, 64u);
  EXPECT_LT(shrunk.size(), records.size());
  EXPECT_TRUE(still_fails(shrunk));
}

}  // namespace
}  // namespace seqrtg::testkit
