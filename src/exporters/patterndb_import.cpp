#include "exporters/patterndb_import.hpp"

#include <cstdlib>

#include "core/scanner.hpp"
#include "util/strings.hpp"
#include "util/xml.hpp"

namespace seqrtg::exporters {

namespace {

using core::PatternToken;
using core::TokenType;

TokenType parser_to_type(std::string_view parser) {
  if (parser == "NUMBER") return TokenType::Integer;
  if (parser == "FLOAT" || parser == "DOUBLE") return TokenType::Float;
  if (parser == "IPv4" || parser == "IPvANY") return TokenType::IPv4;
  if (parser == "IPv6") return TokenType::IPv6;
  if (parser == "MACADDR") return TokenType::Mac;
  if (parser == "EMAIL") return TokenType::Email;
  if (parser == "HOSTNAME") return TokenType::Host;
  // STRING / ESTRING / ANYSTRING / QSTRING / unknown parsers all map to
  // the generic variable (type information beyond this is not encoded in
  // patterndb syntax).
  return TokenType::String;
}

}  // namespace

std::optional<std::vector<PatternToken>> parse_patterndb_pattern(
    std::string_view text) {
  std::vector<PatternToken> out;
  std::string constant;
  bool space_pending = false;
  bool forced_space = false;  // the previous ESTRING consumed a space

  // The patterndb text form glues adjacent constants ("svc-0[", "]:"), but
  // the parser compares against scanner tokens ("svc-0", "[", ...). Each
  // constant run is therefore re-tokenised with the same scanner; the
  // first sub-token inherits the run's spacing, the rest are glued.
  const core::Scanner scanner;
  const auto flush_constant = [&]() {
    if (constant.empty()) return;
    const auto sub_tokens = scanner.scan(constant);
    bool first = true;
    for (const core::Token& sub : sub_tokens) {
      PatternToken t;
      t.is_variable = false;
      t.text = sub.value;
      t.is_space_before = first && (space_pending || forced_space);
      first = false;
      out.push_back(std::move(t));
    }
    space_pending = false;
    forced_space = false;
    constant.clear();
  };

  std::size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == ' ') {
      flush_constant();
      space_pending = true;
      ++pos;
      continue;
    }
    if (c != '@') {
      constant += c;
      ++pos;
      continue;
    }
    // '@@' is an escaped literal '@'.
    if (pos + 1 < text.size() && text[pos + 1] == '@') {
      constant += '@';
      pos += 2;
      continue;
    }
    flush_constant();
    const std::size_t close = text.find('@', pos + 1);
    if (close == std::string_view::npos) return std::nullopt;
    const std::string_view body = text.substr(pos + 1, close - pos - 1);
    pos = close + 1;

    // body: PARSER[:name[:param]]
    const auto parts = util::split(body, ':');
    if (parts.empty() || parts[0].empty()) return std::nullopt;
    PatternToken t;
    t.is_variable = true;
    t.name = parts.size() > 1 ? std::string(parts[1]) : "";
    if (parts[0] == "ANYSTRING" && t.name == "rest") {
      t.var_type = TokenType::Rest;
    } else {
      t.var_type = parser_to_type(parts[0]);
    }
    t.is_space_before = space_pending || forced_space;
    space_pending = false;
    forced_space = false;
    // An ESTRING with a space delimiter swallowed the separator between
    // this variable and the next token.
    if (parts[0] == "ESTRING" && parts.size() > 2 && parts[2] == " ") {
      forced_space = true;
    }
    out.push_back(std::move(t));
  }
  flush_constant();
  return out;
}

ImportResult import_patterndb_xml(std::string_view xml) {
  ImportResult result;
  const util::XmlParseResult doc = util::xml_parse(xml);
  if (!doc.ok()) {
    result.error = doc.error;
    return result;
  }
  if (doc.root.name != "patterndb") {
    result.error = "root element is <" + doc.root.name +
                   ">, expected <patterndb>";
    return result;
  }

  for (const util::XmlNode* ruleset : doc.root.children_named("ruleset")) {
    const std::string service = ruleset->attribute("name");
    const util::XmlNode* rules = ruleset->child("rules");
    if (rules == nullptr) {
      result.warnings.push_back("ruleset " + service + " has no <rules>");
      continue;
    }
    for (const util::XmlNode* rule : rules->children_named("rule")) {
      const util::XmlNode* patterns_node = rule->child("patterns");
      const util::XmlNode* pattern_node =
          patterns_node != nullptr ? patterns_node->child("pattern")
                                   : nullptr;
      if (pattern_node == nullptr) {
        result.warnings.push_back("rule " + rule->attribute("id") +
                                  " has no <pattern>");
        continue;
      }
      auto tokens = parse_patterndb_pattern(pattern_node->text);
      if (!tokens.has_value()) {
        result.warnings.push_back("rule " + rule->attribute("id") +
                                  ": unbalanced '@' in pattern");
        continue;
      }
      core::Pattern p;
      p.service = service;
      p.tokens = std::move(*tokens);

      if (const util::XmlNode* examples = rule->child("examples")) {
        for (const util::XmlNode* example :
             examples->children_named("example")) {
          if (const util::XmlNode* msg = example->child("test_message")) {
            p.add_example(msg->text);
          }
        }
      }
      if (const util::XmlNode* values = rule->child("values")) {
        for (const util::XmlNode* value : values->children_named("value")) {
          const std::string name = value->attribute("name");
          if (name == "seqrtg.match_count") {
            p.stats.match_count = static_cast<std::uint64_t>(
                std::strtoull(value->text.c_str(), nullptr, 10));
          } else if (name == "seqrtg.last_matched") {
            p.stats.last_matched =
                std::strtoll(value->text.c_str(), nullptr, 10);
          }
        }
      }
      result.patterns.push_back(std::move(p));
    }
  }
  return result;
}

}  // namespace seqrtg::exporters
