#include "core/validation.hpp"

#include <gtest/gtest.h>

#include "core/parser.hpp"

namespace seqrtg::core {
namespace {

PatternToken constant(std::string text, bool space = true) {
  PatternToken t;
  t.is_variable = false;
  t.text = std::move(text);
  t.is_space_before = space;
  return t;
}

PatternToken variable(TokenType type, std::string name, bool space = true) {
  PatternToken t;
  t.is_variable = true;
  t.var_type = type;
  t.name = std::move(name);
  t.is_space_before = space;
  return t;
}

Pattern make_pattern(std::string service, std::vector<PatternToken> tokens,
                     std::vector<std::string> examples,
                     std::uint64_t count = 1) {
  Pattern p;
  p.service = std::move(service);
  p.tokens = std::move(tokens);
  p.examples = std::move(examples);
  p.stats.match_count = count;
  return p;
}

TEST(Validation, CleanDatabasePasses) {
  const std::vector<Pattern> patterns = {
      make_pattern("s", {constant("login", false), constant("ok")},
                   {"login ok"}),
      make_pattern("s",
                   {constant("logout", false),
                    variable(TokenType::Integer, "n")},
                   {"logout 42"}),
  };
  const ValidationReport report = validate_patterns(patterns);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.clean_patterns, 2u);
  EXPECT_EQ(report.examples_checked, 2u);
}

TEST(Validation, DetectsCrossMatch) {
  // The literal pattern shadows the wildcard one for the wildcard's own
  // example? No — literals are preferred, so the wildcard's example "state
  // on" (also matching the literal pattern) resolves to the literal one:
  // a conflict on the wildcard pattern.
  const Pattern specific = make_pattern(
      "s", {constant("state", false), constant("on")}, {"state on"}, 10);
  const Pattern generic = make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v")},
      {"state on"}, 5);
  const ValidationReport report = validate_patterns({specific, generic});
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_EQ(report.conflicts[0].pattern_id, generic.id());
  EXPECT_EQ(report.conflicts[0].matched_id, specific.id());
}

TEST(Validation, DetectsExampleThatMatchesNothing) {
  Pattern p = make_pattern(
      "s", {constant("exact", false), constant("text")}, {"different text"});
  const ValidationReport report = validate_patterns({p});
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_TRUE(report.conflicts[0].matched_id.empty());
}

TEST(Validation, PatternsWithoutExamplesAreClean) {
  const Pattern p =
      make_pattern("s", {constant("lonely", false)}, {});
  const ValidationReport report = validate_patterns({p});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.examples_checked, 0u);
}

TEST(Validation, ServicesAreIsolated) {
  // Same text in different services never conflicts.
  const Pattern a =
      make_pattern("svc-a", {constant("boot", false)}, {"boot"});
  const Pattern b =
      make_pattern("svc-b", {constant("boot", false)}, {"boot"});
  EXPECT_TRUE(validate_patterns({a, b}).ok());
}

TEST(ResolveConflicts, KeepsMoreSpecificPattern) {
  const Pattern specific = make_pattern(
      "s", {constant("state", false), constant("on")}, {"state on"}, 3);
  const Pattern generic = make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v")},
      {"state on"}, 100);
  const auto survivors = resolve_conflicts({generic, specific});
  ASSERT_EQ(survivors.size(), 1u);
  // Lower complexity (all-constant) wins despite the lower match count.
  EXPECT_EQ(survivors[0].id(), specific.id());
}

TEST(ResolveConflicts, DiscardsSelfUnmatchablePattern) {
  const Pattern broken = make_pattern(
      "s", {constant("exact", false), constant("text")}, {"other text"});
  const Pattern fine =
      make_pattern("s", {constant("boot", false)}, {"boot"});
  const auto survivors = resolve_conflicts({broken, fine});
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].id(), fine.id());
}

TEST(ResolveConflicts, NoConflictsIsIdentity) {
  const std::vector<Pattern> patterns = {
      make_pattern("s", {constant("a", false)}, {"a"}),
      make_pattern("s", {constant("b", false)}, {"b"}),
  };
  const auto survivors = resolve_conflicts(patterns);
  EXPECT_EQ(survivors.size(), 2u);
}

// Chain regression: A's example resolves to B and B's example resolves to
// C. The old single-pass resolver discarded every loser of the first
// validation round (both A and B), losing the coverage only A provided.
// The fixpoint keeps A: B is a loser itself, so round one discards only B,
// and re-validation shows A is clean once B is gone.
TEST(ResolveConflicts, ChainedConflictsKeepIntermediateCoverage) {
  // C: most specific (all literals). B: "job %string%" loses its example
  // "job done" to C. A: fully generic, loses its example "job running" to
  // B (literal "job" edge preferred) — but nothing else matches
  // "job running" once B is discarded.
  const Pattern c = make_pattern(
      "s", {constant("job", false), constant("done")}, {"job done"}, 2);
  const Pattern b = make_pattern(
      "s", {constant("job", false), variable(TokenType::String, "v")},
      {"job done"}, 5);
  const Pattern a = make_pattern(
      "s",
      {variable(TokenType::String, "k", false),
       variable(TokenType::String, "v")},
      {"job running"}, 9);

  const auto survivors = resolve_conflicts({a, b, c});
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_TRUE(validate_patterns(survivors).ok());
  bool kept_a = false;
  bool kept_c = false;
  for (const Pattern& p : survivors) {
    if (p.id() == a.id()) kept_a = true;
    if (p.id() == c.id()) kept_c = true;
  }
  EXPECT_TRUE(kept_a) << "the chain's head lost its coverage";
  EXPECT_TRUE(kept_c);
}

// Mutation test of the fix itself: re-running the OLD algorithm (one
// validation round, discard every conflicted pattern) on the same chain
// fails the gates the fixpoint passes — it loses the coverage of "job
// running". This pins the single-pass bug as a bug, not a tie-break choice.
TEST(ResolveConflicts, SinglePassAlgorithmFailsTheCoverageGate) {
  const Pattern c = make_pattern(
      "s", {constant("job", false), constant("done")}, {"job done"}, 2);
  const Pattern b = make_pattern(
      "s", {constant("job", false), variable(TokenType::String, "v")},
      {"job done"}, 5);
  const Pattern a = make_pattern(
      "s",
      {variable(TokenType::String, "k", false),
       variable(TokenType::String, "v")},
      {"job running"}, 9);
  const std::vector<Pattern> patterns = {a, b, c};

  // The old resolver, verbatim in spirit: one validate_patterns round,
  // drop every pattern named in a conflict.
  const ValidationReport report = validate_patterns(patterns);
  std::vector<Pattern> single_pass;
  for (const Pattern& p : patterns) {
    bool conflicted = false;
    for (const PatternConflict& conflict : report.conflicts) {
      if (conflict.pattern_id == p.id()) conflicted = true;
    }
    if (!conflicted) single_pass.push_back(p);
  }
  ASSERT_EQ(single_pass.size(), 1u);
  EXPECT_EQ(single_pass[0].id(), c.id());

  // Coverage check the fixpoint output passes and this output fails.
  Parser parser{ScannerOptions{}, SpecialTokenOptions{}};
  for (const Pattern& p : single_pass) parser.add_pattern(p);
  EXPECT_FALSE(parser.parse("s", "job running").has_value())
      << "single-pass output unexpectedly covers the chain head's example";

  Parser fixed{ScannerOptions{}, SpecialTokenOptions{}};
  for (const Pattern& p : resolve_conflicts(patterns)) {
    fixed.add_pattern(p);
  }
  EXPECT_TRUE(fixed.parse("s", "job running").has_value());
  EXPECT_TRUE(fixed.parse("s", "job done").has_value());
}

TEST(ResolveConflicts, SurvivorsValidateCleanly) {
  const Pattern specific = make_pattern(
      "s", {constant("state", false), constant("on")}, {"state on"}, 3);
  const Pattern generic = make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v")},
      {"state on", "state off"}, 100);
  const auto survivors = resolve_conflicts({generic, specific});
  EXPECT_TRUE(validate_patterns(survivors).ok());
}

}  // namespace
}  // namespace seqrtg::core
