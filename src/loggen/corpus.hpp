// Synthetic LogHub-like corpora.
//
// The paper's accuracy evaluation (§IV, Table II) uses 16 labelled log files
// from the LogHub collection, "each with 2,000 entries", with both raw and
// pre-processed (<*>-marked) variants. Those datasets are not redistributed
// here, so this module synthesises structurally equivalent corpora: for each
// of the 16 services it carries a bank of event templates in the service's
// real log format (header layout, token shapes, separators) and generates
// labelled messages with a Zipf-skewed event distribution.
//
// The known failure modes the paper reports are reproduced:
//  - HealthApp raw timestamps lack leading zeros on time parts
//    ("20171224-0:7:20:444"), defeating the strict datetime FSM;
//  - Proxifier has a field that is sometimes a pure integer and sometimes
//    alphanumeric ("64" vs "64*"), splitting one event into two patterns;
//  - Linux has several events that differ only in variable positions.
//
// Template placeholder language (expanded by expand_template):
//   {int}            decimal integer            {int:10-99} with range
//   {float}          decimal float
//   {hex}            hex run (default 8 chars)  {hex:16} with length
//   {ip} {ipv6} {mac} {port} {pid}
//   {word}           lowercase word from a pool {word:5} pool cap
//   {alnum}          mixed alphanumeric id      {alnum:12} with length
//   {path}           absolute filesystem path
//   {host} {email} {url} {user}
//   {dur}            duration like "02:11" or "5.32 ms"
//   {blk}            HDFS block id (blk_ + signed integer)
//   {uuid}           8-4-4-4-12 hex uuid
//   {intstar}        Proxifier quirk: integer, sometimes suffixed '*'
//   {ts_syslog} {ts_iso} {ts_iso_comma} {ts_spark} {ts_android}
//   {ts_healthapp} {ts_proxifier} {ts_bgl} {ts_apache} {ts_epoch}
//   {ts_windows}     timestamp kinds (advance a shared synthetic clock)
//
// Every placeholder renders "<*>" into the pre-processed variant; constant
// text is copied verbatim (mirroring the regex pre-processing of Zhu et
// al.). The pre-processed variant also drops the header, as the logparser
// benchmark parses headers away before handing content to the algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eval/dataset_eval.hpp"
#include "util/rng.hpp"

namespace seqrtg::loggen {

struct EventTemplate {
  /// Body of the message (placeholders per the language above).
  std::string format;
};

struct DatasetSpec {
  std::string name;
  /// Header prepended to every raw message (timestamp, level, component...).
  std::string header;
  std::vector<EventTemplate> events;
  /// Zipf exponent of the event frequency distribution.
  double zipf_s = 1.1;
};

/// Synthetic clock + RNG shared across one corpus generation.
struct GenContext {
  util::Rng rng;
  /// Unix seconds; advanced a little per message.
  std::int64_t clock = 1609459200;  // 2021-01-01 00:00:00 UTC
  /// When true, time parts render without leading zeros (HealthApp quirk).
  bool unpadded_time = false;
};

/// Expands a template. Appends the raw expansion to `raw` and the
/// "<*>"-marked expansion to `pre` (either may be null).
void expand_template(std::string_view tmpl, GenContext& ctx, std::string* raw,
                     std::string* pre);

/// Generates `n` labelled messages from `spec` (deterministic in `seed`).
eval::LabeledCorpus generate_corpus(const DatasetSpec& spec, std::size_t n,
                                    std::uint64_t seed);

/// The 16 LogHub-like dataset specifications, in the paper's Table II order:
/// HDFS, Hadoop, Spark, Zookeeper, OpenStack, BGL, HPC, Thunderbird,
/// Windows, Linux, Mac, Android, HealthApp, Apache, OpenSSH, Proxifier.
const std::vector<DatasetSpec>& loghub_datasets();

/// Lookup by name; nullptr when unknown.
const DatasetSpec* find_dataset(std::string_view name);

}  // namespace seqrtg::loggen
