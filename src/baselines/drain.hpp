// Drain: online log parsing with a fixed-depth tree (He et al., ICWS 2017).
//
// Paper §V: "The Drain algorithm is ranked best overall. It is an online
// algorithm... After a pre-processing step, the message is tokenised and
// sent to a fixed depth parsing tree, created from other messages of the
// same token length, to determine the pattern that it best matches. If no
// match is found, it adds a new path in the tree."
//
// Tree layout: root -> token count -> first `depth-2` tokens (digit-bearing
// tokens route to a "<*>" branch; full internal nodes spill to "<*>") ->
// leaf holding log groups. A group matches when the position-wise
// similarity to its template reaches `similarity_threshold`; the matched
// template is then relaxed, turning differing positions into "<*>".
#pragma once

#include <cstddef>

#include "baselines/baseline.hpp"

namespace seqrtg::baselines {

struct DrainOptions {
  /// Number of token-guided tree levels (the original paper's depth minus
  /// the root and length levels).
  std::size_t depth = 2;
  double similarity_threshold = 0.4;
  std::size_t max_children = 100;
};

std::unique_ptr<LogParser> make_drain(const DrainOptions& opts);

}  // namespace seqrtg::baselines
