# Empty dependencies file for patterndb_import_test.
# This may be replaced when dependencies are built.
