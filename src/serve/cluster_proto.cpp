#include "serve/cluster_proto.hpp"

#include <cstring>

#include "store/wal.hpp"

namespace seqrtg::serve {

namespace {

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::string cluster_stream_header() {
  std::string out(kClusterMagic);
  store::wal_put_u32(out, kClusterProtoVersion);
  return out;
}

std::string encode_cluster_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  store::wal_put_u32(out, static_cast<std::uint32_t>(payload.size()));
  store::wal_put_u32(out, store::crc32(payload));
  out.append(payload);
  return out;
}

std::string encode_hello(std::uint8_t role, std::string_view node_id) {
  std::string payload;
  payload.push_back(static_cast<char>(ClusterFrameType::kHello));
  payload.push_back(static_cast<char>(role));
  store::wal_put_string(payload, node_id);
  return encode_cluster_frame(payload);
}

std::string encode_record(const core::LogRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(ClusterFrameType::kRecord));
  store::wal_put_string(payload, record.service);
  store::wal_put_string(payload, record.message);
  return encode_cluster_frame(payload);
}

std::string encode_wal_group(std::uint64_t seq, std::string_view ops) {
  std::string payload;
  payload.push_back(static_cast<char>(ClusterFrameType::kWalGroup));
  store::wal_put_u64(payload, seq);
  store::wal_put_string(payload, ops);
  return encode_cluster_frame(payload);
}

std::string encode_ack(std::uint64_t count) {
  std::string payload;
  payload.push_back(static_cast<char>(ClusterFrameType::kAck));
  store::wal_put_u64(payload, count);
  return encode_cluster_frame(payload);
}

bool ClusterFrameDecoder::poison(std::string message) {
  poisoned_ = true;
  error_ = std::move(message);
  buffer_.clear();
  pos_ = 0;
  return false;
}

bool ClusterFrameDecoder::feed(std::string_view bytes,
                               std::vector<ClusterFrame>* out) {
  if (poisoned_) return false;
  buffer_.append(bytes);

  if (!header_seen_) {
    if (buffer_.size() - pos_ < kClusterMagic.size() + 4) return true;
    if (std::string_view(buffer_).substr(pos_, kClusterMagic.size()) !=
        kClusterMagic) {
      return poison("bad stream magic");
    }
    const std::uint32_t version =
        read_u32(buffer_.data() + pos_ + kClusterMagic.size());
    if (version != kClusterProtoVersion) {
      return poison("unsupported protocol version " +
                    std::to_string(version));
    }
    pos_ += kClusterMagic.size() + 4;
    header_seen_ = true;
  }

  while (buffer_.size() - pos_ >= 8) {
    const std::uint32_t len = read_u32(buffer_.data() + pos_);
    const std::uint32_t crc = read_u32(buffer_.data() + pos_ + 4);
    // Reject an oversized declaration NOW, from the length field alone —
    // waiting for the bytes would let a malicious peer park the
    // connection forever (or make us buffer 4 GiB).
    if (len > max_payload_) {
      return poison("oversized frame: declared " + std::to_string(len) +
                    " payload bytes (cap " + std::to_string(max_payload_) +
                    ")");
    }
    if (buffer_.size() - pos_ < 8 + static_cast<std::size_t>(len)) break;
    const std::string_view payload(buffer_.data() + pos_ + 8, len);
    if (store::crc32(payload) != crc) {
      return poison("frame CRC mismatch");
    }
    if (payload.empty()) return poison("empty frame payload");

    store::WalReader r{payload};
    const std::uint8_t type = r.u8();
    ClusterFrame frame;
    switch (type) {
      case static_cast<std::uint8_t>(ClusterFrameType::kHello):
        frame.type = ClusterFrameType::kHello;
        frame.role = r.u8();
        frame.node_id = std::string(r.string());
        break;
      case static_cast<std::uint8_t>(ClusterFrameType::kRecord):
        frame.type = ClusterFrameType::kRecord;
        frame.record.service = std::string(r.string());
        frame.record.message = std::string(r.string());
        break;
      case static_cast<std::uint8_t>(ClusterFrameType::kWalGroup):
        frame.type = ClusterFrameType::kWalGroup;
        frame.seq = r.u64();
        frame.ops = std::string(r.string());
        break;
      case static_cast<std::uint8_t>(ClusterFrameType::kAck):
        frame.type = ClusterFrameType::kAck;
        frame.count = r.u64();
        break;
      default:
        return poison("unknown frame type " + std::to_string(type));
    }
    if (!r.ok) {
      return poison("truncated frame body (type " + std::to_string(type) +
                    ")");
    }
    if (!r.at_end()) {
      return poison("trailing bytes after frame body (type " +
                    std::to_string(type) + ")");
    }
    pos_ += 8 + static_cast<std::size_t>(len);
    ++frames_;
    if (out != nullptr) out->push_back(std::move(frame));
  }

  // Compact the consumed prefix so a long-lived connection does not grow
  // its buffer without bound.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace seqrtg::serve
