#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace seqrtg::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (pending_error_ != nullptr) {
    std::exception_ptr error = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      // Letting this escape would terminate the process. parallel_for
      // lanes never reach here (they catch into their ticket); this is the
      // bare-submit() capture path.
      std::unique_lock lock(mutex_);
      if (pending_error_ == nullptr) {
        pending_error_ = std::current_exception();
      }
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Per-call ticket: this call waits on exactly the lanes it submitted, so
  // concurrent parallel_for callers on a shared pool are isolated.
  struct Ticket {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::size_t lanes_pending = 0;        // guarded by the pool mutex
    std::exception_ptr error;             // guarded by the pool mutex
    std::condition_variable cv_done;
  };
  Ticket ticket;
  const std::size_t lanes = std::min(n, thread_count());
  ticket.lanes_pending = lanes;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([this, &ticket, n, &fn] {
      try {
        // First exception wins; the other lanes finish their in-flight
        // index and stop claiming new ones.
        while (!ticket.failed.load(std::memory_order_relaxed)) {
          const std::size_t i =
              ticket.next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          fn(i);
        }
      } catch (...) {
        std::unique_lock lock(mutex_);
        if (ticket.error == nullptr) {
          ticket.error = std::current_exception();
        }
        ticket.failed.store(true, std::memory_order_relaxed);
      }
      std::unique_lock lock(mutex_);
      if (--ticket.lanes_pending == 0) ticket.cv_done.notify_all();
    });
  }
  std::unique_lock lock(mutex_);
  ticket.cv_done.wait(lock, [&ticket] { return ticket.lanes_pending == 0; });
  // The last lane notifies while holding the mutex and touches the ticket
  // no further, so it is safe to destroy once the wait returns.
  std::exception_ptr error = ticket.error;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace seqrtg::util
