#include "baselines/iplom.hpp"

#include <gtest/gtest.h>

namespace seqrtg::baselines {
namespace {

TEST(Iplom, PartitionsByTokenCount) {
  auto iplom = make_iplom();
  const auto groups = iplom->parse({"a b", "a b c", "a b", "a b c"});
  EXPECT_EQ(groups[0], groups[2]);
  EXPECT_EQ(groups[1], groups[3]);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(Iplom, GroupsSameEvent) {
  auto iplom = make_iplom();
  const auto groups = iplom->parse({
      "Temperature 42 exceeds threshold on node-17",
      "Temperature 99 exceeds threshold on node-93",
      "Temperature 55 exceeds threshold on node-12",
  });
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
}

TEST(Iplom, SplitsByLowCardinalityPosition) {
  auto iplom = make_iplom();
  const auto groups = iplom->parse({
      "state up reason 17", "state up reason 93",
      "state down reason 21", "state down reason 77",
  });
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[2], groups[3]);
  EXPECT_NE(groups[0], groups[2]);
}

TEST(Iplom, TemplatesMarkVariablePositions) {
  auto iplom = make_iplom();
  iplom->parse({
      "link error on port 17",
      "link error on port 93",
  });
  const auto templates = iplom->templates();
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0], "link error on port <*>");
}

TEST(Iplom, EveryMessageGetsAGroup) {
  auto iplom = make_iplom();
  const auto groups = iplom->parse({
      "x 1", "y 2 3", "z", "x 4", "w 5 6 7 8",
  });
  for (int g : groups) {
    EXPECT_GE(g, 0);
  }
}

TEST(Iplom, SingletonMessages) {
  auto iplom = make_iplom();
  const auto groups = iplom->parse({"unique message here"});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], 0);
  EXPECT_EQ(iplom->templates()[0], "unique message here");
}

TEST(Iplom, PartitionSupportFoldsSplinters) {
  IplomOptions opts;
  opts.partition_support = 0.3;
  auto iplom = make_iplom(opts);
  // "rare" appears once among many "common": below 30% support, it falls
  // into the leftover bucket with... itself, but must still get a group.
  std::vector<std::string> messages;
  for (int i = 0; i < 9; ++i) messages.push_back("common event " + std::to_string(i));
  messages.push_back("rare oddity 42");
  const auto groups = iplom->parse(messages);
  EXPECT_EQ(groups.size(), 10u);
  for (int g : groups) EXPECT_GE(g, 0);
}

TEST(Iplom, ParseResetsState) {
  auto iplom = make_iplom();
  iplom->parse({"a b", "c d"});
  const auto groups = iplom->parse({"e f"});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(iplom->templates().size(), 1u);
}

TEST(Iplom, EmptyInput) {
  auto iplom = make_iplom();
  EXPECT_TRUE(iplom->parse({}).empty());
}

}  // namespace
}  // namespace seqrtg::baselines
