# Empty compiler generated dependencies file for fsm_hex_test.
# This may be replaced when dependencies are built.
