#include "baselines/baseline.hpp"

#include "util/strings.hpp"

namespace seqrtg::baselines {

std::vector<std::string> ws_tokenize(std::string_view message) {
  std::vector<std::string> out;
  for (const std::string_view part : util::split_whitespace(message)) {
    out.emplace_back(part);
  }
  return out;
}

}  // namespace seqrtg::baselines
