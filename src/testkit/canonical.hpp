// Canonical pattern-set rendering for the differential oracles.
//
// The three mining paths (single-batch Engine, threaded AnalyzeByService,
// the serve daemon) must produce the same pattern set from the same
// corpus, but each stamps different wall-clock timestamps and stores
// patterns through different call sequences. The canonical form projects a
// repository onto exactly the facts the equivalence claim covers —
// service, match count, token count, pattern text — in a stable sort
// order, so "byte-identical canonical strings" is the oracle and any
// divergence renders as a readable line diff.
#pragma once

#include <string>
#include <vector>

#include "core/repository.hpp"

namespace seqrtg::testkit {

/// Renders every pattern of `repo`, services in sorted order, patterns
/// sorted by (token_count, text) within a service. One line per pattern:
///   service \t match_count \t token_count \t text
/// With `include_match_counts` false the count column is omitted (the
/// idempotence oracle re-analyzes, which legitimately bumps counts).
std::string canonical_patterns(core::PatternRepository& repo,
                               bool include_match_counts = true);

/// Canonical rendering of a CLUSTER: pools the patterns of every shard
/// repository, then renders with the same sort and line format as
/// canonical_patterns. With correct service routing each service lives on
/// exactly one shard and the merge is a plain union; a misrouted service
/// (split across two shards) surfaces as duplicate or split rows, so the
/// cluster-vs-single-node diff catches routing bugs, not just mining
/// bugs.
std::string canonical_patterns_merged(
    const std::vector<core::PatternRepository*>& repos,
    bool include_match_counts = true);

/// Human-readable first divergence between two canonical renderings:
/// the 1-based line number plus both lines (or the missing side).
std::string first_diff(const std::string& a, const std::string& b);

}  // namespace seqrtg::testkit
