// Minimal SHA-1 implementation (FIPS 180-1).
//
// Sequence-RTG uses SHA-1 to derive a unique, *reproducible* identifier for
// each (pattern text, service) pair (paper §III, "Making Patterns and
// Statistics Persistent"). SHA-1 is used purely as a stable fingerprint, not
// for security.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace seqrtg::util {

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update("pattern text");
///   h.update("service");
///   std::string id = h.hex_digest();
class Sha1 {
 public:
  Sha1();

  /// Feeds `data` into the hash. May be called repeatedly.
  void update(std::string_view data);

  /// Finalises and returns the 20-byte digest. The hasher must not be
  /// updated afterwards (call reset() to reuse).
  std::array<std::uint8_t, 20> digest();

  /// Finalises and returns the digest as a 40-character lowercase hex string.
  std::string hex_digest();

  /// Restores the initial state so the object can hash a new message.
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
  bool finalised_ = false;
};

/// One-shot convenience: SHA-1 of `data` as lowercase hex.
std::string sha1_hex(std::string_view data);

}  // namespace seqrtg::util
