# Empty dependencies file for seqrtg_pipeline.
# This may be replaced when dependencies are built.
