// Online pattern evolution (ROADMAP: "Self-correcting online pattern
// evolution").
//
// The analyser only ever grows patterns; production streams drift. This
// module is the maintenance pass that keeps a long-lived pattern set
// honest, grounded in USTEP's evolving search tree and SCOPE's
// self-correcting online parsing (PAPERS.md):
//
//   * re-specialise over-general patterns: a wildcard position whose
//     observed value cardinality collapsed to one (per-position value
//     sketches recorded at match time) becomes a literal again;
//   * merge under-general near-duplicates: patterns whose token sequences
//     differ in exactly one position fold into a single typed variable via
//     the same widening rules the analyser trie uses;
//   * TTL/evict patterns unmatched for N days.
//
// Every action must pass two gates before it is applied: the candidate
// pattern must re-match the examples its sources matched (the parser's
// literal edges only accept literally-scanned tokens, so a syntactically
// plausible specialisation can still be dead), and the evolved service set
// must come out of the fixpoint-iterated resolve_conflicts() conflict-free
// without losing example coverage the original set had. A service whose
// evolution fails the coverage gate is left untouched.
//
// evolve_repository() applies the pass to every service and rewrites
// changed services through one RepositoryBatch each — on a durable
// PatternStore that is one WAL commit group per service, so evolution is
// crash-safe: recovery either replays the whole rewrite or none of it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/matchprog.hpp"
#include "core/pattern.hpp"
#include "core/repository.hpp"
#include "core/scanner.hpp"
#include "core/special_tokens.hpp"

namespace seqrtg::core {

/// Bounded distinct-value sketch for one variable position of one pattern.
struct ValueSketch {
  /// Distinct observed values in first-seen order, at most kMaxValues.
  std::vector<std::string> values;
  /// Set once a (kMaxValues+1)-th distinct value arrived; the position is
  /// then known to be genuinely variable and never specialised.
  bool overflow = false;
  std::uint64_t observations = 0;

  static constexpr std::size_t kMaxValues = 8;

  void observe(std::string_view value);
  /// True when every observation carried one single value.
  bool singleton() const {
    return !overflow && values.size() == 1 && observations > 0;
  }
};

/// Thread-safe pattern-id -> per-variable-position sketches, fed by the
/// engine at match time (EngineOptions::sketches) and consumed by the
/// evolution pass as a point-in-time snapshot.
class SketchRegistry {
 public:
  /// Records the parsed field values of one match of `pattern_id`. The
  /// i-th field corresponds to the i-th variable token of the pattern.
  void observe(const std::string& pattern_id, const ParsedFields& fields);

  std::map<std::string, std::vector<ValueSketch>> snapshot() const;

  /// Drops the sketches of a pattern that was rewritten or deleted.
  void forget(const std::string& pattern_id);
  void clear();
  std::size_t pattern_count() const;

  /// Approximate resident bytes of the registry (map nodes, sketch
  /// vectors, sampled value strings) for the governance accountant.
  std::size_t approx_bytes() const;

  /// Replaces the registry contents with a previously snapshotted state
  /// (server restart: sketches_from_json -> restore).
  void restore(std::map<std::string, std::vector<ValueSketch>> sketches);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<ValueSketch>> sketches_;
};

struct EvolutionOptions {
  ScannerOptions scanner;
  SpecialTokenOptions special;

  /// Re-specialise a wildcard only when its sketch saw exactly one distinct
  /// value across at least this many observations.
  bool specialise = true;
  std::uint64_t specialise_min_observations = 3;
  /// Offline fallback (compact without a replay corpus): derive sketches
  /// from the stored examples. Off by default — examples are a tiny sample
  /// of live traffic, so example-driven specialisation can lose coverage
  /// the sketch-driven path would have kept.
  bool specialise_from_examples = false;

  /// Merge near-duplicate patterns differing in exactly one position.
  bool merge = true;
  /// Literal groups merge when every differing literal looks variable-like
  /// (digits, paths — literal_looks_variable), or unconditionally at this
  /// group size (mirrors AnalyzerOptions::min_word_cardinality).
  std::size_t merge_min_group = 4;

  /// Evict patterns unmatched for this many days (0 disables). Ages run
  /// against `now_unix`; patterns with no timestamps at all are kept.
  std::uint32_t ttl_days = 0;
  std::int64_t now_unix = 0;

  /// Example cap for merged patterns (AnalyzerOptions::example_cap).
  std::size_t example_cap = 3;
};

struct EvolutionAction {
  enum class Kind { kSpecialise, kMerge, kEvict, kConflictDiscard };
  Kind kind;
  std::string service;
  /// Human-readable description ("'a %string%' pos 1 -> 'b'").
  std::string detail;
};

struct EvolutionReport {
  std::vector<EvolutionAction> actions;
  std::size_t services_seen = 0;
  std::size_t services_changed = 0;
  /// Services whose evolution failed the coverage gate and were reverted.
  std::size_t services_rejected = 0;
  std::size_t specialised = 0;
  std::size_t merged = 0;
  std::size_t evicted = 0;
  std::size_t conflict_discards = 0;
  std::size_t patterns_before = 0;
  std::size_t patterns_after = 0;

  bool changed() const { return !actions.empty(); }
  EvolutionReport& operator+=(const EvolutionReport& other);
};

/// Serialises a sketch snapshot to versioned single-line JSON
/// (`{"version":1,"patterns":[{"id":...,"positions":[{"values":[...],
/// "overflow":...,"observations":...}]}]}`) so a restarted server resumes
/// evolution with the observation history it had, instead of relearning
/// every position from zero (a specialise_min_observations-sized blind
/// spot after every restart).
std::string sketches_to_json(
    const std::map<std::string, std::vector<ValueSketch>>& sketches);

/// Parses sketches_to_json output. std::nullopt on malformed input or an
/// unknown version — callers start empty rather than half-restored.
std::optional<std::map<std::string, std::vector<ValueSketch>>>
sketches_from_json(std::string_view json);

/// Pure evolution pass over one service's patterns (all entries must share
/// one service). `sketches` maps pattern id -> per-variable-position value
/// sketches; patterns without an entry fall back to example-derived
/// sketches when opts.specialise_from_examples is set. Returns the evolved
/// set — identical to the input when nothing changed or the coverage gate
/// rejected the evolution (report.services_rejected). Accepted actions are
/// appended to `report`.
std::vector<Pattern> evolve_service(
    const std::vector<Pattern>& patterns,
    const std::map<std::string, std::vector<ValueSketch>>& sketches,
    const EvolutionOptions& opts, EvolutionReport* report);

/// Applies evolve_service to every service of `repo` and rewrites each
/// changed service through one repository batch (one WAL commit group on a
/// durable store): deletions first, then fresh upserts, then stat deltas
/// for patterns whose id survived. Sketches of rewritten patterns are
/// forgotten. `sketches` may be nullptr (offline compact).
EvolutionReport evolve_repository(PatternRepository& repo,
                                  SketchRegistry* sketches,
                                  const EvolutionOptions& opts);

}  // namespace seqrtg::core
