# Empty dependencies file for seqrtg_baselines.
# This may be replaced when dependencies are built.
