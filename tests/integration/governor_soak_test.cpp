// Governance soak (ISSUE 10 satellite): a synthetic fleet of services
// streamed through a governed serve pipeline whose ceiling only fits a
// small fraction of the fleet resident at once.
//
// Invariants proven:
//  - the accountant's peak resident bytes never exceed ceiling + one
//    flush's working set of slack: the engine pins every service of the
//    batch in flight from load until its per-service safe point, so the
//    enforceable floor is watermark*ceiling plus the partitions of the
//    single batch being flushed (with single-service batches this
//    degenerates to the classic one-partition bound);
//  - spill AND reload both actually happened (services cycle out and
//    back across flushes — the thrash the ceiling is sized to force);
//  - accepted == processed + shed, exactly;
//  - the final canonical export byte-equals the ungoverned run's.
//
// Scaled down by default to stay CI-friendly; SEQRTG_SOAK_SERVICES /
// SEQRTG_SOAK_RECORDS env vars raise it to the full fleet for nightly
// runs (the ISSUE's 100k-service shape).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include "core/ingest.hpp"
#include "loggen/fleet.hpp"
#include "serve/server.hpp"
#include "store/pattern_store.hpp"
#include "testkit/canonical.hpp"
#include "util/clock.hpp"

namespace seqrtg {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    path = fs::temp_directory_path() /
           ("seqrtg_soak_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long long v = std::atoll(raw);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// Deterministic flush boundaries: pinned clock (interval never fires),
/// small batches (flush every batch_size records), one lane (one global
/// processing order) — so the governed and ungoverned runs see identical
/// per-service batch sequences and must mine identical patterns.
serve::ServeOptions soak_opts(util::Clock* clock) {
  serve::ServeOptions opts;
  opts.port = -1;
  opts.http_port = -1;
  opts.lanes = 1;
  opts.queue_capacity = 1 << 16;
  opts.batch_size = 64;
  opts.flush_interval_s = 1e9;
  opts.checkpoint_on_stop = false;
  opts.clock = clock;
  return opts;
}

TEST(GovernorSoak, FleetUnderTightCeilingHoldsEveryInvariant) {
  const std::size_t services = env_or("SEQRTG_SOAK_SERVICES", 400);
  const std::size_t records = env_or("SEQRTG_SOAK_RECORDS", 6000);

  loggen::FleetOptions fleet_opts;
  fleet_opts.services = services;
  fleet_opts.seed = 20260807;
  loggen::FleetGenerator fleet(fleet_opts);
  std::string payload;
  const std::vector<core::LogRecord> corpus = fleet.take(records);
  for (const core::LogRecord& record : corpus) {
    payload += core::record_to_json(record);
    payload += '\n';
  }

  // Ungoverned reference run: canonical output plus the authoritative
  // partition sizes the ceiling and the slack bound are derived from.
  store::PatternStore plain_store;
  util::ManualClock plain_clock(1700000000);
  serve::Server plain(&plain_store, soak_opts(&plain_clock));
  std::string error;
  ASSERT_TRUE(plain.start(&error)) << error;
  std::istringstream plain_in(payload);
  plain.feed(plain_in);
  const serve::ServeReport plain_report = plain.stop();
  ASSERT_EQ(plain_report.processed, records);

  const std::map<std::string, std::size_t> sizes =
      plain_store.recount_partition_bytes();
  std::size_t total_bytes = 0;
  std::size_t max_partition = 0;
  for (const auto& [service, bytes] : sizes) {
    total_bytes += bytes;
    max_partition = std::max(max_partition, bytes);
  }
  ASSERT_GT(max_partition, 0u);
  // A ceiling that fits roughly 1/20 of the fleet forces constant
  // spill/reload cycling without being degenerate.
  const std::size_t ceiling = std::max<std::size_t>(total_bytes / 20, 1);

  // The slack term: the largest per-flush working set. Flush boundaries
  // are deterministic (every batch_size records, one lane), and partition
  // bytes grow monotonically, so summing each batch's distinct services
  // at their FINAL sizes upper-bounds what that flush could have had
  // pinned at once.
  const std::size_t batch_size = soak_opts(nullptr).batch_size;
  std::size_t max_working_set = 0;
  for (std::size_t at = 0; at < corpus.size(); at += batch_size) {
    std::map<std::string, std::size_t> batch_services;
    const std::size_t end = std::min(at + batch_size, corpus.size());
    for (std::size_t i = at; i < end; ++i) {
      const auto it = sizes.find(corpus[i].service);
      if (it != sizes.end()) batch_services[it->first] = it->second;
    }
    std::size_t ws = 0;
    for (const auto& [svc, bytes] : batch_services) ws += bytes;
    max_working_set = std::max(max_working_set, ws);
  }
  // The invariant below must actually constrain the run: the allowance has
  // to sit well under the ungoverned full-fleet residency.
  ASSERT_LT(ceiling + max_working_set + max_partition, total_bytes);

  TempDir dir;
  store::PatternStore governed_store;
  ASSERT_TRUE(governed_store.open(dir.path.string()));
  util::ManualClock governed_clock(1700000000);
  serve::ServeOptions gopts = soak_opts(&governed_clock);
  gopts.governor.ceiling_bytes = ceiling;
  serve::Server governed(&governed_store, gopts);
  ASSERT_TRUE(governed.start(&error)) << error;
  std::istringstream governed_in(payload);
  governed.feed(governed_in);
  const serve::ServeReport report = governed.stop();
  const core::Governor::Stats stats = governed.governor()->stats();
  // Peak captured from the run itself (the canonical export below reads
  // spilled partitions through without reloading, so it could not hide
  // an overshoot anyway — but measure before it on principle).
  const std::size_t peak = governed.accountant()->peak_resident_bytes();

  EXPECT_EQ(report.accepted, report.processed + report.shed)
      << "exact governance accounting";
  EXPECT_EQ(report.accepted, static_cast<std::uint64_t>(records));
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.shed, 0u)
      << "a durable store always has somewhere to spill, so the soak "
         "must never reach overload";

  EXPECT_GT(stats.spills, 0u) << "the ceiling must actually bite";
  EXPECT_GT(stats.reloads, 0u)
      << "services recur across flushes, so spilled partitions must "
         "come back";

  // The headline bound: between safe points the only partitions that can
  // sit above the enforce watermark are the ones the in-flight flush has
  // pinned — at most one batch's working set — plus one partition of
  // transient: the sequential apply loop can hold a service's pre-merge
  // and re-specialised rows at once mid-rewrite, so its size is not
  // monotone within a flush.
  EXPECT_LE(peak, ceiling + max_working_set + max_partition)
      << "ceiling=" << ceiling << " max_working_set=" << max_working_set
      << " max_partition=" << max_partition << " spills=" << stats.spills
      << " reloads=" << stats.reloads;

  // The ledger still balances after the whole thrash. Audited before the
  // canonical render: canonical's load_service read path reloads spilled
  // partitions, which is unaccounted (correctly) now that stop() detached
  // the governor.
  const auto audit =
      governed.accountant()->audit(governed_store.recount_partition_bytes());
  EXPECT_FALSE(audit.has_value()) << *audit;

  // And governance changed nothing about what was mined.
  EXPECT_EQ(testkit::canonical_patterns(governed_store),
            testkit::canonical_patterns(plain_store));
}

}  // namespace
}  // namespace seqrtg
