file(REMOVE_RECURSE
  "CMakeFiles/seqrtg_loggen.dir/corpus.cpp.o"
  "CMakeFiles/seqrtg_loggen.dir/corpus.cpp.o.d"
  "CMakeFiles/seqrtg_loggen.dir/fleet.cpp.o"
  "CMakeFiles/seqrtg_loggen.dir/fleet.cpp.o.d"
  "CMakeFiles/seqrtg_loggen.dir/generators.cpp.o"
  "CMakeFiles/seqrtg_loggen.dir/generators.cpp.o.d"
  "libseqrtg_loggen.a"
  "libseqrtg_loggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqrtg_loggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
