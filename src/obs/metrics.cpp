#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace seqrtg::obs {

// ---------------------------------------------------------------- Gauge

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

void Gauge::add(double delta) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(expected,
                                      encode(decode(expected) + delta),
                                      std::memory_order_relaxed)) {
  }
}

// ------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::logic_error("Histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::logic_error("Histogram bounds must be strictly increasing");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + v),
      std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket has no upper edge; report the highest finite bound.
        return bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double into = target - static_cast<double>(cumulative);
      return lo + (hi - lo) * into / static_cast<double>(counts[i]);
    }
    cumulative = next;
  }
  return bounds.back();
}

const std::vector<double>& default_latency_buckets() {
  static const std::vector<double> kBuckets = {
      1e-6,   2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
      1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
      1.0,    2.5,    5.0,  10.0};
  return kBuckets;
}

// -------------------------------------------------------------- Registry

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    // Prometheus label values escape backslash, quote and newline.
    for (const char c : labels[i].second) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "untyped";
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name,
                                                     std::string_view help,
                                                     MetricType type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.type = type;
    it->second.help = std::string(help);
  } else if (it->second.type != type) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as " +
                           type_name(it->second.type));
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, MetricType::Counter);
  labels = sorted(std::move(labels));
  Instance& inst = fam.instances[render_labels(labels)];
  if (!inst.counter) {
    inst.labels = std::move(labels);
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, MetricType::Gauge);
  labels = sorted(std::move(labels));
  Instance& inst = fam.instances[render_labels(labels)];
  if (!inst.gauge) {
    inst.labels = std::move(labels);
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, MetricType::Histogram);
  labels = sorted(std::move(labels));
  Instance& inst = fam.instances[render_labels(labels)];
  if (!inst.histogram) {
    inst.labels = std::move(labels);
    inst.histogram = std::make_unique<Histogram>(bounds);
  }
  return *inst.histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fam] : families_) {
    for (auto& [key, inst] : fam.instances) {
      if (inst.counter) inst.counter->reset();
      if (inst.gauge) inst.gauge->reset();
      if (inst.histogram) inst.histogram->reset();
    }
  }
}

std::vector<MetricsRegistry::FamilySnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, fam] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = fam.help;
    fs.type = fam.type;
    for (const auto& [key, inst] : fam.instances) {
      InstanceSnapshot is;
      is.labels = inst.labels;
      if (inst.counter) is.value = static_cast<double>(inst.counter->value());
      if (inst.gauge) is.value = inst.gauge->value();
      if (inst.histogram) is.histogram = inst.histogram->snapshot();
      fs.instances.push_back(std::move(is));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SEQRTG_TELEMETRY");
    return !(env != nullptr && (std::string_view(env) == "off" ||
                                std::string_view(env) == "0"));
  }();
  return enabled;
}

}  // namespace

bool telemetry_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_telemetry_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

}  // namespace seqrtg::obs
