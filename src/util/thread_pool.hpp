// Bounded work-stealing-free thread pool.
//
// AnalyzeByService partitions a batch by service; partitions are fully
// independent (the paper notes patterns never cross services, which is what
// makes horizontal scaling trivial — §IV "a single instance ... could be
// divided simply by sending groups of services to any number of instances").
// Within one process we exploit the same property with a fixed pool of
// workers pulling service partitions from a shared queue.
//
// Exception safety: a task that throws no longer escapes the worker thread
// (which would std::terminate the process). parallel_for captures the first
// exception its lanes raise, lets the remaining lanes drain, and rethrows
// it on the calling thread; each parallel_for call tracks only its own
// lanes, so concurrent callers sharing one pool neither wait on each
// other's work nor observe each other's exceptions. Exceptions from bare
// submit() tasks are captured pool-wide and rethrown by the next
// wait_idle().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seqrtg::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (>=1; 0 is clamped to hardware_concurrency).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins all workers. Exceptions still pending
  /// from submit() tasks are swallowed (there is no caller left to rethrow
  /// to) — call wait_idle() first if you need them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A throwing task is captured (first exception wins)
  /// and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any submit() task raised since the last
  /// wait_idle().
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for ONLY the
  /// lanes this call submitted (a ticket per call — concurrent callers on
  /// a shared pool are independent). If any invocation throws, the first
  /// exception is rethrown here after the remaining lanes drain; indices
  /// not yet claimed when the failure is observed are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  /// First exception raised by a bare submit() task; parallel_for lanes
  /// keep theirs in the per-call ticket instead.
  std::exception_ptr pending_error_;
};

}  // namespace seqrtg::util
