file(REMOVE_RECURSE
  "CMakeFiles/bench_scanner.dir/bench_scanner.cpp.o"
  "CMakeFiles/bench_scanner.dir/bench_scanner.cpp.o.d"
  "bench_scanner"
  "bench_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
