#include "store/value.hpp"

#include <gtest/gtest.h>

namespace seqrtg::store {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::Null);
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_EQ(Value(42).type(), ValueType::Integer);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value(2.5).type(), ValueType::Real);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("text").type(), ValueType::Text);
  EXPECT_EQ(Value("text").as_text(), "text");
}

TEST(Value, CrossTypeAccessorsAreSafe) {
  EXPECT_EQ(Value("x").as_int(), 0);
  EXPECT_EQ(Value().as_text(), "");
  EXPECT_DOUBLE_EQ(Value(7).as_real(), 7.0);
  EXPECT_EQ(Value(7.9).as_int(), 7);
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_LT(Value(1.5), Value(2.5));
}

TEST(Value, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_LT(Value(1.5), Value(2));
}

TEST(Value, SqlOrdering) {
  // NULL < numbers < text.
  EXPECT_LT(Value(), Value(0));
  EXPECT_LT(Value(999), Value(""));
  EXPECT_LT(Value(), Value(""));
  EXPECT_EQ(Value(), Value());
}

TEST(Value, EncodeDecodeRoundTrip) {
  for (const Value& v :
       {Value(), Value(42), Value(-17), Value(3.25),
        Value("plain"), Value("tabs\tand\nnewlines"),
        Value(std::string("\x01\x02 control", 11)),
        Value(""), Value(std::int64_t{1} << 62)}) {
    bool ok = false;
    const Value back = Value::decode(v.encode(), &ok);
    EXPECT_TRUE(ok) << v.encode();
    EXPECT_EQ(back, v) << v.encode();
    EXPECT_EQ(back.type(), v.type());
  }
}

TEST(Value, EncodeHasNoRawTabsOrNewlines) {
  // The persistence format is tab/newline-delimited.
  const std::string enc = Value("a\tb\nc").encode();
  EXPECT_EQ(enc.find('\t'), std::string::npos);
  EXPECT_EQ(enc.find('\n'), std::string::npos);
}

TEST(Value, DecodeRejectsGarbage) {
  bool ok = true;
  Value::decode("", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Value::decode("Inotanumber", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Value::decode("Zx", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Value::decode("T\\q", &ok);  // invalid escape in text payload
  EXPECT_FALSE(ok);
}

TEST(ValueTypeName, Names) {
  EXPECT_EQ(value_type_name(ValueType::Null), "NULL");
  EXPECT_EQ(value_type_name(ValueType::Integer), "INTEGER");
  EXPECT_EQ(value_type_name(ValueType::Real), "REAL");
  EXPECT_EQ(value_type_name(ValueType::Text), "TEXT");
}

}  // namespace
}  // namespace seqrtg::store
