#include "loggen/fleet.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace seqrtg::loggen {
namespace {

FleetOptions small_fleet() {
  FleetOptions opts;
  opts.services = 10;
  opts.min_events_per_service = 3;
  opts.max_events_per_service = 8;
  opts.seed = 777;
  return opts;
}

TEST(Fleet, ServiceCountAndEventBounds) {
  FleetGenerator fleet(small_fleet());
  EXPECT_EQ(fleet.service_count(), 10u);
  for (std::size_t i = 0; i < fleet.service_count(); ++i) {
    EXPECT_GE(fleet.event_count(i), 3u);
    EXPECT_LE(fleet.event_count(i), 8u);
  }
  EXPECT_GE(fleet.total_events(), 30u);
  EXPECT_LE(fleet.total_events(), 80u);
}

TEST(Fleet, DeterministicStream) {
  FleetGenerator a(small_fleet());
  FleetGenerator b(small_fleet());
  for (int i = 0; i < 200; ++i) {
    const FleetRecord ra = a.next();
    const FleetRecord rb = b.next();
    EXPECT_EQ(ra.record.service, rb.record.service);
    EXPECT_EQ(ra.record.message, rb.record.message);
    EXPECT_EQ(ra.event_idx, rb.event_idx);
  }
}

TEST(Fleet, RecordsCarryValidCoordinates) {
  FleetGenerator fleet(small_fleet());
  for (int i = 0; i < 500; ++i) {
    const FleetRecord rec = fleet.next();
    ASSERT_LT(rec.service_idx, fleet.service_count());
    ASSERT_LT(rec.event_idx, fleet.event_count(rec.service_idx));
    EXPECT_EQ(rec.record.service, fleet.service_name(rec.service_idx));
    EXPECT_FALSE(rec.record.message.empty());
  }
}

TEST(Fleet, AllServicesEventuallyEmit) {
  FleetGenerator fleet(small_fleet());
  std::set<std::size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(fleet.next().service_idx);
  EXPECT_EQ(seen.size(), fleet.service_count());
}

TEST(Fleet, TrafficIsZipfSkewed) {
  FleetOptions opts = small_fleet();
  opts.service_zipf = 1.2;
  FleetGenerator fleet(opts);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[fleet.next().service_idx];
  EXPECT_GT(counts[0], counts[5]);
}

TEST(Fleet, TakeReturnsPlainRecords) {
  FleetGenerator fleet(small_fleet());
  const auto batch = fleet.take(50);
  ASSERT_EQ(batch.size(), 50u);
  for (const auto& r : batch) {
    EXPECT_FALSE(r.service.empty());
    EXPECT_FALSE(r.message.empty());
  }
}

TEST(Fleet, SameEventSharesSkeleton) {
  // Messages of the same (service, event) must share their constant
  // skeleton (first body word after the header), so patterns can form.
  FleetGenerator fleet(small_fleet());
  std::map<std::pair<std::size_t, std::size_t>, std::set<char>> first_chars;
  for (int i = 0; i < 2000; ++i) {
    const FleetRecord rec = fleet.next();
    const std::size_t bracket = rec.record.message.find("]: ");
    ASSERT_NE(bracket, std::string::npos) << rec.record.message;
    first_chars[{rec.service_idx, rec.event_idx}].insert(
        rec.record.message[bracket + 3]);
  }
  for (const auto& [key, chars] : first_chars) {
    EXPECT_EQ(chars.size(), 1u);
  }
}

TEST(Fleet, NoiseRecordsAreUniqueAndFlagged) {
  FleetOptions opts = small_fleet();
  opts.noise_fraction = 0.5;
  FleetGenerator fleet(opts);
  std::set<std::string> noise_bodies;
  std::size_t noise_count = 0;
  for (int i = 0; i < 1000; ++i) {
    const FleetRecord rec = fleet.next();
    if (rec.event_idx == kNoiseEvent) {
      ++noise_count;
      noise_bodies.insert(rec.record.message);
    }
  }
  EXPECT_GT(noise_count, 300u);
  EXPECT_EQ(noise_bodies.size(), noise_count) << "noise must never repeat";
}

TEST(Fleet, ZeroNoiseByDefault) {
  FleetGenerator fleet(small_fleet());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(fleet.next().event_idx, kNoiseEvent);
  }
}

}  // namespace
}  // namespace seqrtg::loggen
