// Hexadecimal-family finite state machine.
//
// Second of the three Sequence scanner FSMs (paper §III): recognises MAC
// addresses, IPv6 addresses and raw hexadecimal runs. These must be matched
// before the date/time FSM would mis-split colon-separated groups, and
// before the general FSM would emit them as literals.
#pragma once

#include <cstddef>
#include <string_view>

namespace seqrtg::core {

/// Matches a MAC address (six groups of two hex digits separated by ':' or
/// '-') at the start of `text`. Returns bytes consumed, or 0.
std::size_t match_mac(std::string_view text);

/// Matches an IPv6 address at the start of `text`: either a fully expanded
/// eight-group address or a "::"-compressed form, optionally with an
/// embedded IPv4 tail. Returns bytes consumed, or 0. Deliberately rejects
/// shapes that are more plausibly times ("06:25:56") by requiring "::" or
/// at least four colons.
std::size_t match_ipv6(std::string_view text);

/// Matches a hexadecimal run at the start of `text`: "0x"-prefixed digits,
/// or a bare run of >= `min_bare_len` hex digits containing both a decimal
/// digit and a hex letter (so English words like "decade" do not qualify,
/// while "7d5f03e2" and "deadbeef01" do). Returns bytes consumed, or 0.
std::size_t match_hex(std::string_view text, std::size_t min_bare_len = 8);

}  // namespace seqrtg::core
