// Unit and differential suite for the compiled match program (ISSUE 7):
// MatchProgram must agree with the reference trie walk on every outcome —
// matched pattern identity, extracted fields (names, values, order) and
// miss/match verdicts — including literal-vs-wildcard precedence, %rest%
// suffix binding and backtracking through ambiguous prefixes. The
// differential half trains a parser per synthetic LogHub corpus and replays
// traffic through both paths.
#include "core/matchprog.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/analyze_by_service.hpp"
#include "core/parser.hpp"
#include "core/repository.hpp"
#include "loggen/corpus.hpp"
#include "util/rng.hpp"

namespace seqrtg::core {
namespace {

PatternToken constant(std::string text, bool space = true) {
  PatternToken t;
  t.is_variable = false;
  t.text = std::move(text);
  t.is_space_before = space;
  return t;
}

PatternToken variable(TokenType type, std::string name, bool space = true) {
  PatternToken t;
  t.is_variable = true;
  t.var_type = type;
  t.name = std::move(name);
  t.is_space_before = space;
  return t;
}

Pattern make_pattern(std::string service, std::vector<PatternToken> tokens) {
  Pattern p;
  p.service = std::move(service);
  p.tokens = std::move(tokens);
  return p;
}

/// Runs one parse through the compiled program and through the trie walk
/// and asserts identical outcomes; returns the (shared) verdict.
std::optional<ParseResult> parse_both(Parser& parser, std::string_view service,
                                      std::string_view message) {
  parser.set_matchprog_enabled(true);
  const auto compiled = parser.parse(service, message);
  parser.set_matchprog_enabled(false);
  const auto trie = parser.parse(service, message);
  EXPECT_EQ(compiled.has_value(), trie.has_value()) << message;
  if (compiled && trie) {
    EXPECT_EQ(compiled->pattern, trie->pattern) << message;
    EXPECT_EQ(compiled->fields, trie->fields) << message;
  }
  parser.set_matchprog_enabled(true);
  return compiled;
}

TEST(MatchProgram, LiteralAndVariableExtraction) {
  Parser parser;
  parser.add_pattern(make_pattern(
      "sshd", {constant("login", false), constant("from"),
               variable(TokenType::IPv4, "srcip"), constant("port"),
               variable(TokenType::Integer, "srcport")}));
  const auto r = parse_both(parser, "sshd", "login from 10.1.2.3 port 22");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->fields.size(), 2u);
  EXPECT_EQ(r->fields[0].first, "srcip");
  EXPECT_EQ(r->fields[0].second, "10.1.2.3");
  EXPECT_EQ(r->fields[1].first, "srcport");
  EXPECT_EQ(r->fields[1].second, "22");
  EXPECT_FALSE(parse_both(parser, "sshd", "login from nowhere port 22"));
  EXPECT_FALSE(parse_both(parser, "cron", "login from 10.1.2.3 port 22"));
}

TEST(MatchProgram, LiteralEdgePreferredOverWildcard) {
  Parser parser;
  parser.add_pattern(make_pattern(
      "s", {constant("state", false), constant("on")}));
  parser.add_pattern(make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v")}));
  const auto lit = parse_both(parser, "s", "state on");
  ASSERT_TRUE(lit.has_value());
  EXPECT_TRUE(lit->fields.empty());  // took the literal edge
  const auto wild = parse_both(parser, "s", "state off");
  ASSERT_TRUE(wild.has_value());
  ASSERT_EQ(wild->fields.size(), 1u);
  EXPECT_EQ(wild->fields[0].second, "off");
}

TEST(MatchProgram, BacktracksOutOfLiteralPrefix) {
  // "job alpha done" walks the literal "alpha" edge first (most-specific
  // wins), finds its subtree demands "failed", and must back out into the
  // %string% wildcard — without leaking bindings from the abandoned branch.
  Parser parser;
  parser.add_pattern(make_pattern(
      "s", {constant("job", false), constant("alpha"), constant("failed")}));
  parser.add_pattern(make_pattern(
      "s", {constant("job", false), variable(TokenType::String, "name"),
            constant("done")}));
  const auto r = parse_both(parser, "s", "job alpha done");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->fields.size(), 1u);
  EXPECT_EQ(r->fields[0].first, "name");
  EXPECT_EQ(r->fields[0].second, "alpha");
  const auto f = parse_both(parser, "s", "job alpha failed");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->fields.empty());
}

TEST(MatchProgram, RestSuffixBindsRemainder) {
  Parser parser;
  parser.add_pattern(make_pattern(
      "s", {constant("panic", false), variable(TokenType::Rest, "trace")}));
  const auto r = parse_both(parser, "s", "panic stack frame 1 frame 2");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->fields.size(), 1u);
  EXPECT_EQ(r->fields[0].first, "trace");
  EXPECT_EQ(r->fields[0].second, "stack frame 1 frame 2");
}

TEST(MatchProgram, RecompilesAfterPatternSetChange) {
  Parser parser;
  parser.add_pattern(make_pattern("s", {constant("alpha", false)}));
  ASSERT_TRUE(parse_both(parser, "s", "alpha"));
  EXPECT_FALSE(parse_both(parser, "s", "beta"));
  const std::uint64_t epoch = parser.pattern_epoch();
  // Adding a pattern must invalidate the published program (epoch bump) and
  // the next match must see the new pattern.
  parser.add_pattern(make_pattern("s", {constant("beta", false)}));
  EXPECT_GT(parser.pattern_epoch(), epoch);
  EXPECT_TRUE(parse_both(parser, "s", "beta"));
  EXPECT_TRUE(parse_both(parser, "s", "alpha"));
  parser.clear();
  EXPECT_FALSE(parse_both(parser, "s", "alpha"));
}

TEST(MatchProgram, HexWildcardStillRejectsShortIntegers) {
  // The one value-dependent acceptance rule: %hex% takes an Integer token
  // only when it is at least 6 digits (a plausible hex run), enforced at
  // match time on top of the type bitmask.
  Parser parser;
  parser.add_pattern(make_pattern(
      "s", {constant("id", false), variable(TokenType::Hex, "h")}));
  EXPECT_FALSE(parse_both(parser, "s", "id 12345"));
  const auto r = parse_both(parser, "s", "id 123456");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->fields[0].second, "123456");
}

/// Trains a parser from the analyser output over one synthetic corpus.
Parser train_on_corpus(const loggen::DatasetSpec& spec,
                       const std::vector<std::string>& messages) {
  InMemoryRepository repo;
  EngineOptions eopts;
  Engine engine(&repo, eopts);
  std::vector<LogRecord> records;
  records.reserve(messages.size());
  for (const std::string& m : messages) {
    LogRecord rec;
    rec.service = spec.name;
    rec.message = m;
    records.push_back(std::move(rec));
  }
  engine.analyze_by_service(records);
  Parser parser(eopts.scanner, eopts.special);
  for (const std::string& svc : repo.services()) {
    for (const Pattern& p : repo.load_service(svc)) parser.add_pattern(p);
  }
  return parser;
}

TEST(MatchProgram, DifferentialAgainstTrieAcrossAllLoghubCorpora) {
  for (const auto& spec : loggen::loghub_datasets()) {
    const auto train =
        loggen::generate_corpus(spec, 2000, util::kDefaultSeed).messages;
    Parser parser = train_on_corpus(spec, train);
    // Replay: seen traffic (must mostly hit), fresh traffic from the same
    // generator family, and traffic from a sibling corpus (mostly misses).
    const auto fresh =
        loggen::generate_corpus(spec, 400, util::kDefaultSeed ^ 0xA5).messages;
    std::size_t hits = 0;
    for (const std::string& m : fresh) {
      if (parse_both(parser, spec.name, m)) ++hits;
    }
    EXPECT_GT(hits, fresh.size() / 2) << spec.name;
    for (std::size_t i = 0; i < 200; ++i) {
      parse_both(parser, spec.name, train[i]);
    }
  }
}

TEST(MatchProgram, DifferentialOnCrossCorpusMisses) {
  // Feed each trained parser traffic from a different dataset: exercises
  // the miss path (root rejection, mid-walk failures) through both engines.
  const auto& specs = loggen::loghub_datasets();
  const auto& spec = specs[0];
  Parser parser = train_on_corpus(
      spec, loggen::generate_corpus(spec, 1500, util::kDefaultSeed).messages);
  for (std::size_t d = 1; d < specs.size(); ++d) {
    for (const std::string& m :
         loggen::generate_corpus(specs[d], 60, util::kDefaultSeed).messages) {
      parse_both(parser, spec.name, m);
    }
  }
}

}  // namespace
}  // namespace seqrtg::core
