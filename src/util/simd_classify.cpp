#include "util/simd_classify.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SEQRTG_X86 1
#endif

namespace seqrtg::util {

namespace {

/// pshufb nibble LUTs for kByteDelim membership, derived from the scalar
/// byte-class table at compile time so the two can never diverge.
///
/// Scheme (simdjson-style shuffle lookup): every distinct high nibble among
/// the delimiter bytes gets one bit; hi[h] carries that bit, lo[l] carries
/// the bits of all groups that contain low nibble l. A byte c is a
/// delimiter iff (lo[c & 15] & hi[c >> 4]) != 0. Exact because a bit is
/// set in both LUTs only for (hi, lo) pairs that name a delimiter byte.
/// Bytes >= 0x80 classify as non-delimiters: pshufb zeroes lanes whose
/// index has the high bit set, and the static_assert below guarantees the
/// delimiter set is pure ASCII.
struct NibbleLuts {
  std::uint8_t lo[16] = {};
  std::uint8_t hi[16] = {};
};

constexpr NibbleLuts make_delim_luts() {
  NibbleLuts luts;
  std::uint8_t group_bit[16] = {};  // hi nibble -> assigned bit (0 = none)
  int groups = 0;
  for (unsigned c = 0; c < 256; ++c) {
    if ((kByteClassTable[c] & kByteDelim) == 0) continue;
    if (c >= 0x80) return NibbleLuts{};  // poisoned; caught by static_assert
    const unsigned hi = c >> 4;
    if (group_bit[hi] == 0) {
      if (groups >= 8) return NibbleLuts{};
      group_bit[hi] = static_cast<std::uint8_t>(1u << groups);
      ++groups;
      luts.hi[hi] = group_bit[hi];
    }
    luts.lo[c & 15] = static_cast<std::uint8_t>(luts.lo[c & 15] | group_bit[hi]);
  }
  return luts;
}

inline constexpr NibbleLuts kDelimLuts = make_delim_luts();

constexpr bool luts_match_table() {
  for (unsigned c = 0; c < 256; ++c) {
    const bool table = (kByteClassTable[c] & kByteDelim) != 0;
    const bool lut =
        c < 0x80 && (kDelimLuts.lo[c & 15] & kDelimLuts.hi[c >> 4]) != 0;
    if (table != lut) return false;
  }
  return true;
}

static_assert(luts_match_table(),
              "delimiter nibble LUTs diverge from kByteClassTable (more "
              "than 8 high-nibble groups, or a non-ASCII delimiter?)");

/// One 64-byte block's worth of classification bits.
struct Masks64 {
  std::uint64_t delim = 0;
  std::uint64_t digit = 0;
};

/// Scalar kernel: also the tail handler for the SIMD kernels, so all paths
/// share one definition of "boundary" and "digit".
inline Masks64 classify64_scalar(const char* data, std::size_t n) {
  Masks64 m;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t cls = byte_class(data[i]);
    if (cls & kByteDelim) m.delim |= std::uint64_t{1} << i;
    if (cls & kByteDigit) m.digit |= std::uint64_t{1} << i;
  }
  return m;
}

void build_scalar(const char* data, std::size_t n, std::uint64_t* words,
                  std::uint64_t* digits) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; i += 64, ++w) {
    const Masks64 m = classify64_scalar(data + i, n - i < 64 ? n - i : 64);
    words[w] = m.delim;
    digits[w] = m.digit;
  }
}

#ifdef SEQRTG_X86

/// One 16-byte block's worth of classification bits.
struct Masks16 {
  std::uint32_t delim = 0;
  std::uint32_t digit = 0;
};

__attribute__((target("ssse3"))) inline Masks16 classify16_sse(
    const char* data) {
  const __m128i lo_lut =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(kDelimLuts.lo));
  const __m128i hi_lut =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(kDelimLuts.hi));
  const __m128i nib = _mm_set1_epi8(0x0F);
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
  // lo lookup indexes with the raw byte: pshufb zeroes lanes >= 0x80.
  const __m128i lo = _mm_shuffle_epi8(lo_lut, _mm_and_si128(v, nib));
  const __m128i hi = _mm_shuffle_epi8(
      hi_lut, _mm_and_si128(_mm_srli_epi16(v, 4), nib));
  const __m128i hit = _mm_and_si128(lo, hi);
  const __m128i miss = _mm_cmpeq_epi8(hit, _mm_setzero_si128());
  // Digits are the contiguous range '0'..'9'; signed compares are exact
  // because the range sits below 0x80 (bytes >= 0x80 compare negative).
  const __m128i dig =
      _mm_and_si128(_mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1)),
                    _mm_cmpgt_epi8(_mm_set1_epi8('9' + 1), v));
  Masks16 m;
  m.delim = ~static_cast<std::uint32_t>(_mm_movemask_epi8(miss)) & 0xFFFFu;
  m.digit = static_cast<std::uint32_t>(_mm_movemask_epi8(dig));
  return m;
}

__attribute__((target("ssse3"))) void build_sse(const char* data,
                                                std::size_t n,
                                                std::uint64_t* words,
                                                std::uint64_t* digits) {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    const Masks16 a = classify16_sse(data + i);
    const Masks16 b = classify16_sse(data + i + 16);
    const Masks16 c = classify16_sse(data + i + 32);
    const Masks16 d = classify16_sse(data + i + 48);
    words[w] = static_cast<std::uint64_t>(a.delim) |
               static_cast<std::uint64_t>(b.delim) << 16 |
               static_cast<std::uint64_t>(c.delim) << 32 |
               static_cast<std::uint64_t>(d.delim) << 48;
    digits[w] = static_cast<std::uint64_t>(a.digit) |
                static_cast<std::uint64_t>(b.digit) << 16 |
                static_cast<std::uint64_t>(c.digit) << 32 |
                static_cast<std::uint64_t>(d.digit) << 48;
  }
  if (i < n) {
    std::uint64_t delim_bits = 0;
    std::uint64_t digit_bits = 0;
    std::size_t shift = 0;
    for (; i + 16 <= n; i += 16, shift += 16) {
      const Masks16 m = classify16_sse(data + i);
      delim_bits |= static_cast<std::uint64_t>(m.delim) << shift;
      digit_bits |= static_cast<std::uint64_t>(m.digit) << shift;
    }
    if (i < n) {
      const Masks64 m = classify64_scalar(data + i, n - i);
      delim_bits |= m.delim << shift;
      digit_bits |= m.digit << shift;
    }
    words[w] = delim_bits;
    digits[w] = digit_bits;
  }
}

/// One 32-byte block's worth of classification bits.
struct Masks32 {
  std::uint32_t delim = 0;
  std::uint32_t digit = 0;
};

__attribute__((target("avx2"))) inline Masks32 classify32_avx2(
    const char* data) {
  const __m256i lo_lut = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(kDelimLuts.lo)));
  const __m256i hi_lut = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(kDelimLuts.hi)));
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  const __m256i lo = _mm256_shuffle_epi8(lo_lut, _mm256_and_si256(v, nib));
  const __m256i hi = _mm256_shuffle_epi8(
      hi_lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), nib));
  const __m256i hit = _mm256_and_si256(lo, hi);
  const __m256i miss = _mm256_cmpeq_epi8(hit, _mm256_setzero_si256());
  // See classify16_sse for why signed range compares are exact here.
  const __m256i dig =
      _mm256_and_si256(_mm256_cmpgt_epi8(v, _mm256_set1_epi8('0' - 1)),
                       _mm256_cmpgt_epi8(_mm256_set1_epi8('9' + 1), v));
  Masks32 m;
  m.delim = ~static_cast<std::uint32_t>(_mm256_movemask_epi8(miss));
  m.digit = static_cast<std::uint32_t>(_mm256_movemask_epi8(dig));
  return m;
}

__attribute__((target("avx2"))) void build_avx2(const char* data,
                                                std::size_t n,
                                                std::uint64_t* words,
                                                std::uint64_t* digits) {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    const Masks32 a = classify32_avx2(data + i);
    const Masks32 b = classify32_avx2(data + i + 32);
    words[w] = static_cast<std::uint64_t>(a.delim) |
               static_cast<std::uint64_t>(b.delim) << 32;
    digits[w] = static_cast<std::uint64_t>(a.digit) |
                static_cast<std::uint64_t>(b.digit) << 32;
  }
  if (i < n) {
    std::uint64_t delim_bits = 0;
    std::uint64_t digit_bits = 0;
    std::size_t shift = 0;
    if (i + 32 <= n) {
      const Masks32 m = classify32_avx2(data + i);
      delim_bits = m.delim;
      digit_bits = m.digit;
      i += 32;
      shift = 32;
    }
    if (i < n) {
      const Masks64 m = classify64_scalar(data + i, n - i);
      delim_bits |= m.delim << shift;
      digit_bits |= m.digit << shift;
    }
    words[w] = delim_bits;
    digits[w] = digit_bits;
  }
}

#endif  // SEQRTG_X86

}  // namespace

void TokenBoundaryMap::build(std::string_view text, SimdLevel level) {
  size_ = text.size();
  word_count_ = (size_ + 63) / 64;
  if (words_.size() < word_count_) {
    words_.resize(word_count_);
    digits_.resize(word_count_);
  }
  if (word_count_ == 0) return;
#ifdef SEQRTG_X86
  switch (level) {
    case SimdLevel::kAvx2:
      build_avx2(text.data(), size_, words_.data(), digits_.data());
      return;
    case SimdLevel::kSse:
      build_sse(text.data(), size_, words_.data(), digits_.data());
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  build_scalar(text.data(), size_, words_.data(), digits_.data());
}

}  // namespace seqrtg::util
