// Pattern repository interface.
//
// RTG extension #2 makes discovered patterns persistent between executions.
// The core stays storage-agnostic behind this interface: `store::PatternStore`
// implements it on top of the embedded database, and `InMemoryRepository`
// backs tests and single-run benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pattern.hpp"

namespace seqrtg::core {

class PatternRepository {
 public:
  virtual ~PatternRepository() = default;

  /// All patterns known for `service`.
  virtual std::vector<Pattern> load_service(std::string_view service) = 0;

  /// All known service names (sorted).
  virtual std::vector<std::string> services() = 0;

  /// Inserts `p` or merges it into the existing row with the same id:
  /// match counts add up, examples merge up to the cap, last_matched takes
  /// the most recent value.
  virtual void upsert_pattern(const Pattern& p) = 0;

  /// Records `count` additional matches of pattern `id` at time `when`.
  virtual void record_match(const std::string& id, std::uint64_t count,
                            std::int64_t when) = 0;

  /// Removes pattern `id` (and its examples) if present; true when a row
  /// was deleted. The evolution/compaction pass uses this to rewrite a
  /// service; durable repositories log the deletion so it is crash-safe.
  virtual bool delete_pattern(const std::string& id) = 0;

  virtual std::optional<Pattern> find(const std::string& id) = 0;

  virtual std::size_t pattern_count() = 0;

  /// Example merge cap applied by upsert_pattern (see merge_pattern_into).
  /// Held on the interface — not per-backend — so the in-memory and durable
  /// stores stay differentially identical when the engine configures a cap
  /// other than the default 3 (AnalyzerOptions::example_cap). Atomic
  /// because every serve lane constructs its Engine — which configures the
  /// cap — against the one shared store, concurrently with the others.
  void set_example_cap(std::size_t cap) {
    example_cap_.store(cap, std::memory_order_relaxed);
  }
  std::size_t example_cap() const {
    return example_cap_.load(std::memory_order_relaxed);
  }

  /// Batch transaction hooks. Durable repositories make every mutation
  /// between begin_batch() and commit_batch() atomic on disk — a crash (or
  /// abort_batch()) persists none of them. The defaults are no-ops so
  /// in-memory repositories stay unchanged.
  virtual void begin_batch() {}
  virtual void commit_batch() {}
  virtual void abort_batch() {}

 protected:
  std::atomic<std::size_t> example_cap_{3};
};

/// RAII batch scope: commits on `commit()`, aborts when destroyed without
/// one (e.g. an exception unwinding the engine's repo-save phase).
class RepositoryBatch {
 public:
  explicit RepositoryBatch(PatternRepository* repo) : repo_(repo) {
    repo_->begin_batch();
  }
  ~RepositoryBatch() {
    if (!done_) repo_->abort_batch();
  }
  RepositoryBatch(const RepositoryBatch&) = delete;
  RepositoryBatch& operator=(const RepositoryBatch&) = delete;

  void commit() {
    repo_->commit_batch();
    done_ = true;
  }

 private:
  PatternRepository* repo_;
  bool done_ = false;
};

/// Thread-safe in-memory repository (no persistence).
class InMemoryRepository final : public PatternRepository {
 public:
  std::vector<Pattern> load_service(std::string_view service) override;
  std::vector<std::string> services() override;
  void upsert_pattern(const Pattern& p) override;
  void record_match(const std::string& id, std::uint64_t count,
                    std::int64_t when) override;
  bool delete_pattern(const std::string& id) override;
  std::optional<Pattern> find(const std::string& id) override;
  std::size_t pattern_count() override;

 private:
  std::mutex mutex_;
  // id -> pattern; service -> ids keeps load_service cheap.
  std::map<std::string, Pattern> by_id_;
  std::map<std::string, std::vector<std::string>, std::less<>> by_service_;
};

/// Shared merge logic for upserts (used by both repository implementations).
void merge_pattern_into(Pattern& existing, const Pattern& incoming,
                        std::size_t example_cap = 3);

/// The pattern id is SHA-1(text + service), and the %-delimited text does
/// not encode variable *types* — two patterns can share an id while one
/// holds %uid% as Hex and the other as String (e.g. when some values of an
/// alphanumeric field happen to scan as hex). Widens `existing`'s variable
/// types to String wherever `incoming` disagrees, so the stored pattern
/// matches the union. Returns true when anything changed.
bool widen_pattern_tokens(std::vector<PatternToken>& existing,
                          const std::vector<PatternToken>& incoming);

}  // namespace seqrtg::core
