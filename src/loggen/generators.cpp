// Placeholder expansion engine for the synthetic corpora (see corpus.hpp
// for the placeholder language).
#include <array>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "loggen/corpus.hpp"
#include "util/strings.hpp"

namespace seqrtg::loggen {

namespace {

constexpr std::array<const char*, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
constexpr std::array<const char*, 7> kDays = {"Thu", "Fri", "Sat", "Sun",
                                              "Mon", "Tue", "Wed"};

/// Civil date from unix seconds (Howard Hinnant's algorithm, UTC).
struct Civil {
  int year;
  unsigned month;  // 1..12
  unsigned day;    // 1..31
  unsigned hour;
  unsigned minute;
  unsigned second;
  unsigned weekday;  // 0 = Thu (1970-01-01)
};

Civil civil_from_unix(std::int64_t t) {
  const std::int64_t days = (t >= 0 ? t : t - 86399) / 86400;
  std::int64_t secs = t - days * 86400;
  Civil c{};
  c.weekday = static_cast<unsigned>(((days % 7) + 7) % 7);
  c.hour = static_cast<unsigned>(secs / 3600);
  c.minute = static_cast<unsigned>((secs % 3600) / 60);
  c.second = static_cast<unsigned>(secs % 60);
  std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  c.year = static_cast<int>(y + (m <= 2));
  c.month = m;
  c.day = d;
  return c;
}

std::string fmt(const char* layout, ...) {
  char buf[128];
  va_list args;
  va_start(args, layout);
  std::vsnprintf(buf, sizeof(buf), layout, args);
  va_end(args);
  return buf;
}

const std::vector<std::string>& word_pool() {
  static const std::vector<std::string> kWords = {
      "alpha",   "bravo",   "charlie", "delta",   "echo",    "foxtrot",
      "golf",    "hotel",   "india",   "juliet",  "kilo",    "lima",
      "mike",    "november", "oscar",  "papa",    "quebec",  "romeo",
      "sierra",  "tango",   "uniform", "victor",  "whiskey", "xray",
      "yankee",  "zulu",    "worker",  "daemon",  "session", "client"};
  return kWords;
}

const std::vector<std::string>& path_pool() {
  static const std::vector<std::string> kPaths = {
      "/var/log/messages",       "/etc/ssh/sshd_config",
      "/usr/lib/systemd/system", "/opt/app/releases/current",
      "/home/users/data/cache",  "/tmp/scratch/job/output",
      "/srv/storage/pool/vol",   "/proc/sys/net/ipv4",
      "/data/hadoop/dfs/name",   "/var/spool/mail/root"};
  return kPaths;
}

std::string gen_ip(util::Rng& rng) {
  return fmt("%d.%d.%d.%d", static_cast<int>(rng.uniform(10, 250)),
             static_cast<int>(rng.uniform(0, 255)),
             static_cast<int>(rng.uniform(0, 255)),
             static_cast<int>(rng.uniform(1, 254)));
}

std::string gen_ipv6(util::Rng& rng) {
  return fmt("fe80::%s:%s:%s:%s", rng.hex_string(4).c_str(),
             rng.hex_string(4).c_str(), rng.hex_string(4).c_str(),
             rng.hex_string(4).c_str());
}

std::string gen_mac(util::Rng& rng) {
  std::string out;
  for (int i = 0; i < 6; ++i) {
    if (i > 0) out += ':';
    out += rng.hex_string(2);
  }
  return out;
}

std::string gen_uuid(util::Rng& rng) {
  return rng.hex_string(8) + "-" + rng.hex_string(4) + "-" +
         rng.hex_string(4) + "-" + rng.hex_string(4) + "-" +
         rng.hex_string(12);
}

/// Parses "kind:arg" and dispatches to a generator. Returns the raw value.
std::string generate_value(std::string_view kind_and_arg, GenContext& ctx) {
  util::Rng& rng = ctx.rng;
  std::string_view kind = kind_and_arg;
  std::string_view arg;
  if (const std::size_t colon = kind_and_arg.find(':');
      colon != std::string_view::npos) {
    kind = kind_and_arg.substr(0, colon);
    arg = kind_and_arg.substr(colon + 1);
  }
  const auto arg_int = [&](std::int64_t fallback) {
    if (arg.empty()) return fallback;
    return static_cast<std::int64_t>(
        std::strtoll(std::string(arg).c_str(), nullptr, 10));
  };

  if (kind == "int") {
    if (!arg.empty() && arg.find('-') != std::string_view::npos) {
      const auto parts = util::split(arg, '-');
      const std::int64_t lo =
          std::strtoll(std::string(parts[0]).c_str(), nullptr, 10);
      const std::int64_t hi =
          std::strtoll(std::string(parts[1]).c_str(), nullptr, 10);
      return std::to_string(rng.uniform(lo, hi));
    }
    return std::to_string(rng.uniform(0, 99999));
  }
  if (kind == "float") {
    return fmt("%.2f", static_cast<double>(rng.uniform(0, 999999)) / 100.0);
  }
  if (kind == "hex") {
    return rng.hex_string(static_cast<std::size_t>(arg_int(8)));
  }
  if (kind == "ip") return gen_ip(rng);
  if (kind == "ipv6") return gen_ipv6(rng);
  if (kind == "mac") return gen_mac(rng);
  if (kind == "port") return std::to_string(rng.uniform(1024, 65535));
  if (kind == "pid") return std::to_string(rng.uniform(100, 32768));
  if (kind == "word") {
    const auto cap = static_cast<std::size_t>(arg_int(
        static_cast<std::int64_t>(word_pool().size())));
    const std::size_t n =
        std::min(cap == 0 ? word_pool().size() : cap, word_pool().size());
    return word_pool()[static_cast<std::size_t>(rng.next_below(n))];
  }
  if (kind == "alnum") {
    // Mixed alphanumeric id; always starts with a letter and contains at
    // least one digit so it scans as a literal-with-digits.
    const auto len = static_cast<std::size_t>(arg_int(8));
    std::string s = rng.alnum_string(len > 2 ? len - 2 : 1);
    return std::string(1, static_cast<char>('a' + rng.next_below(26))) + s +
           std::to_string(rng.next_below(10));
  }
  if (kind == "path") {
    return rng.choice(path_pool()) + "/" + rng.alnum_string(6);
  }
  if (kind == "host") {
    return "node-" + std::to_string(rng.uniform(1, 480)) +
           ".cluster.example.org";
  }
  if (kind == "email") {
    return rng.choice(word_pool()) + std::to_string(rng.uniform(1, 99)) +
           "@example.org";
  }
  if (kind == "url") {
    return "https://svc.example.org/api/v1/" + rng.alnum_string(6);
  }
  if (kind == "user") {
    return rng.choice(word_pool()) + std::to_string(rng.uniform(0, 999));
  }
  if (kind == "dur") {
    // "{dur:colon}" pins the mm:ss form; "{dur:ms}" pins the "N.NN ms"
    // form; bare "{dur}" mixes both (Table I: Duration is a Text/Number
    // mix whose shapes vary within one field).
    const bool colon_form =
        arg == "colon" || (arg.empty() && rng.chance(0.5));
    if (arg != "ms" && colon_form) {
      return fmt("%02d:%02d", static_cast<int>(rng.uniform(0, 59)),
                 static_cast<int>(rng.uniform(0, 59)));
    }
    return fmt("%d.%02d ms", static_cast<int>(rng.uniform(0, 900)),
               static_cast<int>(rng.uniform(0, 99)));
  }
  if (kind == "blk") {
    const std::int64_t v = rng.uniform(1000000000, 9999999999LL);
    return std::string("blk_") + (rng.chance(0.5) ? "-" : "") +
           std::to_string(v);
  }
  if (kind == "uuid") return gen_uuid(rng);
  if (kind == "intstar") {
    // Proxifier quirk: "alphanumeric fields where it is common for the data
    // to be fully numeric in some cases" — sometimes "64", sometimes "64*".
    std::string v = std::to_string(rng.uniform(1, 9999));
    if (rng.chance(0.4)) v += "*";
    return v;
  }

  // Timestamp kinds share the synthetic clock.
  const Civil c = civil_from_unix(ctx.clock);
  if (kind == "ts_syslog") {
    return fmt("%s %2u %02u:%02u:%02u", kMonths[c.month - 1], c.day, c.hour,
               c.minute, c.second);
  }
  if (kind == "ts_iso") {
    return fmt("%04d-%02u-%02u %02u:%02u:%02u", c.year, c.month, c.day,
               c.hour, c.minute, c.second);
  }
  if (kind == "ts_iso_comma") {
    return fmt("%04d-%02u-%02u %02u:%02u:%02u,%03d", c.year, c.month, c.day,
               c.hour, c.minute, c.second,
               static_cast<int>(rng.uniform(0, 999)));
  }
  if (kind == "ts_windows") {
    return fmt("%04d-%02u-%02u %02u:%02u:%02u", c.year, c.month, c.day,
               c.hour, c.minute, c.second);
  }
  if (kind == "ts_spark") {
    return fmt("%02d/%02u/%02u %02u:%02u:%02u", c.year % 100, c.month, c.day,
               c.hour, c.minute, c.second);
  }
  if (kind == "ts_android") {
    return fmt("%02u-%02u %02u:%02u:%02u.%03d", c.month, c.day, c.hour,
               c.minute, c.second, static_cast<int>(rng.uniform(0, 999)));
  }
  if (kind == "ts_healthapp") {
    // Time parts deliberately lack leading zeros — the documented
    // limitation of the seminal datetime FSM (paper §IV).
    return fmt("%04d%02u%02u-%u:%u:%u:%d", c.year, c.month, c.day, c.hour,
               c.minute, c.second, static_cast<int>(rng.uniform(0, 999)));
  }
  if (kind == "ts_proxifier") {
    return fmt("%02u.%02u %02u:%02u:%02u", c.month, c.day, c.hour, c.minute,
               c.second);
  }
  if (kind == "ts_bgl") {
    return fmt("%04d-%02u-%02u-%02u.%02u.%02u.%06d", c.year, c.month, c.day,
               c.hour, c.minute, c.second,
               static_cast<int>(rng.uniform(0, 999999)));
  }
  if (kind == "ts_apache") {
    return fmt("%s %s %02u %02u:%02u:%02u %04d", kDays[c.weekday],
               kMonths[c.month - 1], c.day, c.hour, c.minute, c.second,
               c.year);
  }
  if (kind == "ts_epoch") return std::to_string(ctx.clock);

  // Unknown placeholder: emit it verbatim so template bugs are visible.
  return "{" + std::string(kind_and_arg) + "}";
}

}  // namespace

void expand_template(std::string_view tmpl, GenContext& ctx, std::string* raw,
                     std::string* pre) {
  std::size_t pos = 0;
  while (pos < tmpl.size()) {
    const std::size_t open = tmpl.find('{', pos);
    if (open == std::string_view::npos) {
      const auto tail = tmpl.substr(pos);
      if (raw != nullptr) raw->append(tail);
      if (pre != nullptr) pre->append(tail);
      break;
    }
    const std::size_t close = tmpl.find('}', open + 1);
    if (close == std::string_view::npos) {
      const auto tail = tmpl.substr(pos);
      if (raw != nullptr) raw->append(tail);
      if (pre != nullptr) pre->append(tail);
      break;
    }
    const auto literal = tmpl.substr(pos, open - pos);
    if (raw != nullptr) raw->append(literal);
    if (pre != nullptr) pre->append(literal);

    const std::string_view body = tmpl.substr(open + 1, close - open - 1);
    std::string_view kind = body;
    std::string_view arg;
    if (const std::size_t colon = body.find(':');
        colon != std::string_view::npos) {
      kind = body.substr(0, colon);
      arg = body.substr(colon + 1);
    }

    // Structural placeholders (ground truth treats all of these as one
    // event; they are what makes the hard datasets hard):
    if (kind == "oneof") {
      // Semi-constant value from a tiny closed set ("on|off").
      const auto choices = util::split(arg, '|');
      const auto pick = choices[static_cast<std::size_t>(
          ctx.rng.next_below(choices.size()))];
      if (raw != nullptr) raw->append(pick);
      if (pre != nullptr) pre->append("<*>");
      pos = close + 1;
      continue;
    }
    if (kind == "opt") {
      // Optional constant suffix/infix, present in ~half the messages —
      // the same event then has two token counts.
      if (ctx.rng.chance(0.5)) {
        if (raw != nullptr) raw->append(arg);
        if (pre != nullptr) pre->append(arg);
      }
      pos = close + 1;
      continue;
    }
    if (kind == "intlist") {
      // Variable-length list of integers ("3552 3534 3375"); the
      // pre-processed form gets one <*> per element, so token counts vary
      // in both variants.
      std::int64_t lo = 2;
      std::int64_t hi = 6;
      if (const std::size_t dash = arg.find('-');
          dash != std::string_view::npos) {
        lo = std::strtoll(std::string(arg.substr(0, dash)).c_str(), nullptr,
                          10);
        hi = std::strtoll(std::string(arg.substr(dash + 1)).c_str(), nullptr,
                          10);
      }
      const std::int64_t k = ctx.rng.uniform(lo, hi);
      for (std::int64_t i = 0; i < k; ++i) {
        if (i > 0) {
          if (raw != nullptr) raw->append(" ");
          if (pre != nullptr) pre->append(" ");
        }
        if (raw != nullptr) {
          raw->append(std::to_string(ctx.rng.uniform(1000, 9999)));
        }
        if (pre != nullptr) pre->append("<*>");
      }
      pos = close + 1;
      continue;
    }

    const std::string value = generate_value(body, ctx);
    if (raw != nullptr) raw->append(value);
    if (pre != nullptr) pre->append("<*>");
    pos = close + 1;
  }
}

}  // namespace seqrtg::loggen
