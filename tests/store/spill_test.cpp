// Partition spill/reload machinery (DESIGN.md §17, pattern_store.hpp
// class comment):
//
//  - spill/reload round-trip with transparent read-through on
//    load_service/upsert and the aggregate readers (services,
//    pattern_count, export_patterns).
//  - Replay: kOpSpill/kOpReload groups embed the row set, so a cold
//    reopen reconstructs both the spilled set and the spill files from
//    the WAL alone — including across a checkpoint that truncated it.
//  - open()-time reconciliation of every crash window: stale spill file
//    (rows resident) deleted, orphaned .sp.tmp removed, corrupt file
//    logged and dropped.
//  - Ordering contract: a service with ops buffered in an open batch
//    scope refuses to spill until the scope closes.
//  - Governance wiring: attach_governor seeds the ledger/LRU/spilled set
//    and the accountant audits clean against recount_partition_bytes.
#include "store/pattern_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/governor.hpp"

namespace seqrtg::store {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("seqrtg_spill_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

core::Pattern make_pattern(std::string service, std::string text_word,
                           std::uint64_t count = 1) {
  core::Pattern p;
  p.service = std::move(service);
  core::PatternToken c;
  c.is_variable = false;
  c.text = std::move(text_word);
  p.tokens.push_back(c);
  core::PatternToken v;
  v.is_variable = true;
  v.var_type = core::TokenType::Integer;
  v.name = "n";
  v.is_space_before = true;
  p.tokens.push_back(v);
  p.stats.match_count = count;
  p.stats.first_seen = 100;
  p.stats.last_matched = 100;
  p.examples = {text_word + " 1"};
  return p;
}

std::vector<fs::path> spill_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("spill-", 0) == 0 && name.size() > 3 &&
        name.compare(name.size() - 3, 3, ".sp") == 0) {
      out.push_back(entry.path());
    }
  }
  return out;
}

TEST(Spill, RoundTripWithTransparentReload) {
  TempDir dir("roundtrip");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  const core::Pattern pa = make_pattern("alpha", "login", 3);
  const core::Pattern pb = make_pattern("alpha", "logout", 2);
  const core::Pattern pc = make_pattern("beta", "connect", 5);
  store.upsert_pattern(pa);
  store.upsert_pattern(pb);
  store.upsert_pattern(pc);

  ASSERT_TRUE(store.spill_partition("alpha"));
  EXPECT_TRUE(store.is_spilled("alpha"));
  EXPECT_FALSE(store.is_spilled("beta"));
  EXPECT_EQ(store.spilled_services(),
            (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(spill_files(dir.path).size(), 1u);
  // find() is resident-only by contract.
  EXPECT_FALSE(store.find(pa.id()).has_value());
  // Aggregate readers see through the spill.
  EXPECT_EQ(store.services(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(store.pattern_count(), 3u);
  const auto exported = store.export_patterns({});
  EXPECT_EQ(exported.size(), 3u);

  // load_service transparently reloads.
  const auto rows = store.load_service("alpha");
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_FALSE(store.is_spilled("alpha"));
  EXPECT_TRUE(spill_files(dir.path).empty())
      << "reload must delete the spill file";
  const auto found = store.find(pa.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->stats.match_count, 3u);
  EXPECT_EQ(found->tokens, pa.tokens) << "typed tokens survive the trip";
  EXPECT_EQ(found->examples, pa.examples);
}

TEST(Spill, UpsertIntoSpilledPartitionReloadsFirst) {
  TempDir dir("upsert_reload");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  store.upsert_pattern(make_pattern("svc", "old", 4));
  ASSERT_TRUE(store.spill_partition("svc"));

  store.upsert_pattern(make_pattern("svc", "fresh", 1));
  EXPECT_FALSE(store.is_spilled("svc"));
  EXPECT_EQ(store.load_service("svc").size(), 2u)
      << "the spilled rows must come back before the new upsert lands";
}

TEST(Spill, RefusalsWhenNotSpillable) {
  PatternStore memory_only;
  memory_only.upsert_pattern(make_pattern("svc", "event"));
  EXPECT_FALSE(memory_only.spill_partition("svc"))
      << "no durable directory = nowhere to spill";

  TempDir dir("refusals");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  EXPECT_FALSE(store.spill_partition("unknown"));
  store.upsert_pattern(make_pattern("svc", "event"));
  ASSERT_TRUE(store.spill_partition("svc"));
  EXPECT_FALSE(store.spill_partition("svc")) << "already spilled";
}

TEST(Spill, BatchScopeBuffersBlockSpillUntilCommit) {
  TempDir dir("batch");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  store.begin_batch();
  store.upsert_pattern(make_pattern("svc", "event"));
  EXPECT_FALSE(store.spill_partition("svc"))
      << "a service with ops buffered in an open batch scope must not "
         "spill (WAL order would diverge from memory order)";
  store.commit_batch();
  EXPECT_TRUE(store.spill_partition("svc"));
}

TEST(Spill, ColdReopenReplaysResidencyOps) {
  TempDir dir("replay");
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    store.upsert_pattern(make_pattern("alpha", "login", 7));
    store.upsert_pattern(make_pattern("beta", "connect", 2));
    ASSERT_TRUE(store.spill_partition("alpha"));
  }
  {
    // Reopen #1: replay must land alpha spilled (file present), beta
    // resident — and reloading must hand the rows back intact.
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    EXPECT_TRUE(store.is_spilled("alpha"));
    EXPECT_EQ(spill_files(dir.path).size(), 1u);
    EXPECT_EQ(store.pattern_count(), 2u);
    const auto rows = store.load_service("alpha");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].stats.match_count, 7u);
  }
  {
    // Reopen #2: the reload was logged too, so alpha is resident now.
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    EXPECT_FALSE(store.is_spilled("alpha"));
    EXPECT_EQ(store.load_service("alpha").size(), 1u);
    EXPECT_TRUE(spill_files(dir.path).empty());
  }
}

TEST(Spill, SpilledPartitionSurvivesCheckpointTruncatingTheWal) {
  TempDir dir("checkpoint");
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    store.upsert_pattern(make_pattern("svc", "event", 9));
    ASSERT_TRUE(store.spill_partition("svc"));
    ASSERT_TRUE(store.checkpoint());
    EXPECT_EQ(store.durability_stats().wal_records, 0u);
  }
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  EXPECT_TRUE(store.is_spilled("svc"))
      << "after the WAL is truncated the spill file alone must carry the "
         "partition";
  const auto rows = store.load_service("svc");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stats.match_count, 9u);
}

TEST(Spill, ReconcileDeletesStaleFileWhenRowsAreResident) {
  TempDir dir("stale");
  fs::path file;
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    store.upsert_pattern(make_pattern("svc", "event"));
    ASSERT_TRUE(store.spill_partition("svc"));
    file = spill_files(dir.path).at(0);
    // Keep a copy, reload (which deletes the file + logs kOpReload).
    fs::copy_file(file, dir.path / "keep.bin");
    ASSERT_EQ(store.load_service("svc").size(), 1u);
  }
  // Put the file back: this is the crash window where the spill-file
  // write survived but its kOpSpill group never committed.
  fs::copy_file(dir.path / "keep.bin", file);
  fs::remove(dir.path / "keep.bin");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  EXPECT_FALSE(store.is_spilled("svc"))
      << "resident rows are authoritative over a stale spill file";
  EXPECT_TRUE(spill_files(dir.path).empty());
  EXPECT_EQ(store.load_service("svc").size(), 1u);
}

TEST(Spill, ReconcileRemovesTmpLeftoversAndCorruptFiles) {
  TempDir dir("tmp_corrupt");
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    store.upsert_pattern(make_pattern("svc", "event"));
  }
  // An interrupted spill-file write and a truncated/garbage spill file.
  std::ofstream(dir.path / "spill-00000000000000000000000000000000.sp.tmp")
      << "half-written";
  std::ofstream(dir.path / "spill-11111111111111112222222222222222.sp")
      << "garbage";
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  EXPECT_TRUE(store.spilled_services().empty());
  EXPECT_TRUE(spill_files(dir.path).empty());
  EXPECT_FALSE(
      fs::exists(dir.path /
                 "spill-00000000000000000000000000000000.sp.tmp"));
}

TEST(Spill, CorruptSpillFileOnReloadDegradesToEmptyPartition) {
  TempDir dir("corrupt_reload");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  store.upsert_pattern(make_pattern("svc", "event"));
  ASSERT_TRUE(store.spill_partition("svc"));
  const fs::path file = spill_files(dir.path).at(0);
  std::ofstream(file, std::ios::trunc) << "not a spill file";

  EXPECT_TRUE(store.load_service("svc").empty())
      << "corrupt spill file = rows are gone; callers proceed empty";
  EXPECT_FALSE(store.is_spilled("svc"))
      << "the store must stop claiming the partition exists";
  // The partition is rebuildable from traffic afterwards.
  store.upsert_pattern(make_pattern("svc", "rebuilt"));
  EXPECT_EQ(store.load_service("svc").size(), 1u);
}

TEST(Spill, ExportReadThroughAppliesFiltersToSpilledRows) {
  TempDir dir("export");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  store.upsert_pattern(make_pattern("svc", "hot", 50));
  store.upsert_pattern(make_pattern("svc", "cold", 1));
  ASSERT_TRUE(store.spill_partition("svc"));

  PatternStore::ExportFilter filter;
  filter.min_match_count = 10;
  const auto strong = store.export_patterns(filter);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0].stats.match_count, 50u);
  EXPECT_TRUE(store.is_spilled("svc"))
      << "export reads through without forcing a reload";

  PatternStore::ExportFilter other_service;
  other_service.service = "elsewhere";
  EXPECT_TRUE(store.export_patterns(other_service).empty());
}

TEST(Spill, AttachGovernorSeedsLedgerAndAuditBalances) {
  TempDir dir("governed");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  store.upsert_pattern(make_pattern("alpha", "login", 3));
  store.upsert_pattern(make_pattern("beta", "connect", 2));
  ASSERT_TRUE(store.spill_partition("beta"));

  core::MemoryAccountant accountant;
  core::GovernorPolicy policy;
  policy.ceiling_bytes = 1 << 20;
  core::Governor governor(policy, &accountant);
  store.attach_governor(&governor);

  EXPECT_EQ(accountant.partition_count(), 1u)
      << "only resident partitions are charged";
  EXPECT_GT(accountant.partition_bytes("alpha"), 0u);
  EXPECT_EQ(governor.stats().spilled_partitions, 1u)
      << "pre-existing spilled partitions are seeded, not counted as "
         "fresh spills";
  EXPECT_EQ(governor.stats().spills, 0u);
  EXPECT_FALSE(
      accountant.audit(store.recount_partition_bytes()).has_value());

  // Mutations keep the ledger in sync; spill/reload move charges.
  store.upsert_pattern(make_pattern("alpha", "another", 1));
  EXPECT_FALSE(
      accountant.audit(store.recount_partition_bytes()).has_value());
  ASSERT_TRUE(store.spill_partition("alpha"));
  EXPECT_EQ(accountant.partition_count(), 0u);
  EXPECT_EQ(accountant.resident_bytes(), 0u);
  store.load_service("beta");
  EXPECT_EQ(accountant.partition_count(), 1u);
  EXPECT_FALSE(
      accountant.audit(store.recount_partition_bytes()).has_value());
  store.attach_governor(nullptr);
}

TEST(Spill, PinLandingMidSpillAbortsAndPreservesStatsUpdates) {
  TempDir dir("pin_race");
  core::Pattern p = make_pattern("svc", "event", 1);
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.path.string()));
    store.upsert_pattern(p);

    core::MemoryAccountant accountant;
    core::GovernorPolicy policy;
    policy.ceiling_bytes = 1 << 20;
    core::Governor governor(policy, &accountant);
    store.attach_governor(&governor);

    // Deterministic replay of the race: the accountant hook fires inside
    // spill_partition between try_claim_spill and the on_spilled commit
    // (the ledger drop sits between them) — exactly where a lane's pin()
    // can land, since pin takes only the governor mutex, never the
    // store's.
    bool pinned = false;
    accountant.set_fault_hook([&](std::uint64_t) {
      if (!pinned) {
        pinned = true;
        governor.pin("svc");
      }
      return false;
    });
    EXPECT_FALSE(store.spill_partition("svc"))
        << "the late pin must turn the spill into a refused claim";
    ASSERT_TRUE(pinned);
    accountant.set_fault_hook(nullptr);

    // The partition is resident again (spill undone via its own file), so
    // the pin's contract held and the lane's stats update is not dropped.
    EXPECT_FALSE(store.is_spilled("svc"));
    EXPECT_TRUE(spill_files(dir.path).empty());
    EXPECT_EQ(governor.stats().pinned_partitions, 1u);
    EXPECT_EQ(governor.stats().spills, 0u);
    store.record_match(p.id(), 5, 1234);
    auto found = store.find(p.id());
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->stats.match_count, 6u)
        << "match counts must not vanish into a spilled partition";
    governor.unpin("svc");
    EXPECT_FALSE(
        accountant.audit(store.recount_partition_bytes()).has_value());
    store.attach_governor(nullptr);
  }
  // The WAL recorded spill then reload then the match — a consistent
  // history a cold reopen replays cleanly.
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  EXPECT_FALSE(store.is_spilled("svc"));
  const auto found = store.find(p.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->stats.match_count, 6u);
}

TEST(Spill, ZeroRowLoadKeepsEnginePinAlive) {
  TempDir dir("zero_row_pin");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  core::MemoryAccountant accountant;
  core::GovernorPolicy policy;
  policy.ceiling_bytes = 1 << 20;
  core::Governor governor(policy, &accountant);
  store.attach_governor(&governor);

  // The engine pins before load_service; loading a service with no
  // stored patterns must not destroy the pin it just took (the zero-row
  // refresh used to erase the whole LRU entry, pins included).
  governor.pin("ghost");
  EXPECT_TRUE(store.load_service("ghost").empty());
  EXPECT_EQ(governor.stats().pinned_partitions, 1u)
      << "the in-flight pin survives a zero-row load";
  EXPECT_FALSE(governor.try_claim_spill("ghost"));
  governor.unpin("ghost");

  // Once unpinned, a spill attempt on the empty partition cleans up the
  // lingering zero-row entry instead of refusing forever.
  EXPECT_FALSE(store.spill_partition("ghost"));
  EXPECT_TRUE(governor.lru_order().empty());
  store.attach_governor(nullptr);
}

TEST(Spill, RecordMatchOnResidentRowsKeepsLedgerAuditable) {
  TempDir dir("record_match");
  PatternStore store;
  ASSERT_TRUE(store.open(dir.path.string()));
  const core::Pattern p = make_pattern("svc", "event", 1);
  store.upsert_pattern(p);

  core::MemoryAccountant accountant;
  core::GovernorPolicy policy;
  policy.ceiling_bytes = 1 << 20;
  core::Governor governor(policy, &accountant);
  store.attach_governor(&governor);

  store.record_match(p.id(), 5, 1234);
  // The byte estimator is count-independent, so match traffic must not
  // drift the ledger away from the recount.
  EXPECT_FALSE(
      accountant.audit(store.recount_partition_bytes()).has_value());
  const auto found = store.find(p.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->stats.match_count, 6u);
  store.attach_governor(nullptr);
}

}  // namespace
}  // namespace seqrtg::store
