# Empty dependencies file for special_tokens_test.
# This may be replaced when dependencies are built.
