# Empty compiler generated dependencies file for ael_test.
# This may be replaced when dependencies are built.
