// Integration: the full production path — JSON stream ingestion -> batching
// -> AnalyzeByService -> persistent PatternStore -> export -> reload ->
// parse new traffic. Mirrors the deployment of paper Fig. 6.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/analyze_by_service.hpp"
#include "core/ingest.hpp"
#include "core/parser.hpp"
#include "exporters/exporter.hpp"
#include "loggen/fleet.hpp"
#include "store/pattern_store.hpp"

namespace seqrtg {
namespace {

std::string fleet_stream_json(std::size_t n, std::uint64_t seed) {
  loggen::FleetOptions opts;
  opts.services = 8;
  opts.min_events_per_service = 3;
  opts.max_events_per_service = 6;
  opts.seed = seed;
  loggen::FleetGenerator fleet(opts);
  std::string out;
  for (const core::LogRecord& rec : fleet.take(n)) {
    out += core::record_to_json(rec);
    out += '\n';
  }
  return out;
}

TEST(EndToEnd, StreamToStoreToExportToParse) {
  const std::string db_path =
      (std::filesystem::temp_directory_path() / "seqrtg_e2e.db").string();

  // Phase 1: ingest a JSON stream in batches, mine patterns, persist.
  {
    store::PatternStore pattern_store;
    core::EngineOptions opts;
    opts.threads = 4;
    opts.now_unix = 1609459200;
    core::Engine engine(&pattern_store, opts);

    std::istringstream stream(fleet_stream_json(3000, 99));
    core::JsonStreamIngester ingester(500);
    std::size_t batches = 0;
    while (true) {
      const auto batch = ingester.read_batch(stream);
      if (batch.empty()) break;
      const core::BatchReport report = engine.analyze_by_service(batch);
      EXPECT_EQ(report.records, batch.size());
      ++batches;
    }
    EXPECT_EQ(batches, 6u);
    EXPECT_EQ(ingester.stats().accepted, 3000u);
    EXPECT_EQ(ingester.stats().malformed, 0u);
    EXPECT_GT(pattern_store.pattern_count(), 10u);
    ASSERT_TRUE(pattern_store.save(db_path));
  }

  // Phase 2: reload the store in a fresh process-equivalent and parse new
  // traffic from the same fleet (same seed = same event templates; the
  // generator continues the stream, so messages are new).
  {
    store::PatternStore pattern_store;
    ASSERT_TRUE(pattern_store.load(db_path));
    EXPECT_GT(pattern_store.pattern_count(), 10u);

    core::Parser parser;
    for (const std::string& svc : pattern_store.services()) {
      for (const core::Pattern& p : pattern_store.load_service(svc)) {
        parser.add_pattern(p);
      }
    }

    loggen::FleetOptions fopts;
    fopts.services = 8;
    fopts.min_events_per_service = 3;
    fopts.max_events_per_service = 6;
    fopts.seed = 99;
    loggen::FleetGenerator fleet(fopts);
    // Skip past the training window to get unseen messages.
    fleet.take(3000);
    std::size_t matched = 0;
    const std::size_t total = 1000;
    for (std::size_t i = 0; i < total; ++i) {
      const core::LogRecord rec = fleet.next().record;
      if (parser.parse(rec.service, rec.message)) ++matched;
    }
    // The trained patterns must match the overwhelming majority of fresh
    // traffic from the same fleet.
    EXPECT_GT(matched, total * 85 / 100)
        << "matched only " << matched << "/" << total;

    // Phase 3: exports render for every stored pattern without blowing up.
    const auto patterns = pattern_store.export_patterns({});
    EXPECT_FALSE(patterns.empty());
    const std::string xml = exporters::export_patterns(
        patterns, exporters::ExportFormat::PatterndbXml);
    EXPECT_NE(xml.find("</patterndb>"), std::string::npos);
    const std::string grok =
        exporters::export_patterns(patterns, exporters::ExportFormat::Grok);
    EXPECT_NE(grok.find("filter {"), std::string::npos);
    const std::string yaml =
        exporters::export_patterns(patterns, exporters::ExportFormat::Yaml);
    EXPECT_NE(yaml.find("patterns:"), std::string::npos);
  }
  std::remove(db_path.c_str());
}

TEST(EndToEnd, MalformedStreamLinesAreCountedNotFatal) {
  store::PatternStore pattern_store;
  core::Engine engine(&pattern_store, core::EngineOptions{});
  std::istringstream stream(
      R"({"service":"s","message":"hello world"})" "\n"
      "THIS IS NOT JSON\n"
      R"({"service":"s","message":"hello again"})" "\n");
  core::JsonStreamIngester ingester(10);
  const auto batch = ingester.read_batch(stream);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(ingester.stats().malformed, 1u);
  const auto report = engine.analyze_by_service(batch);
  EXPECT_EQ(report.records, 2u);
}

TEST(EndToEnd, IncrementalBatchesConvergeToStablePatternSet) {
  // Feeding the same traffic repeatedly must stop growing the store:
  // parse-first catches everything once patterns exist.
  store::PatternStore pattern_store;
  core::EngineOptions opts;
  core::Engine engine(&pattern_store, opts);

  loggen::FleetOptions fopts;
  fopts.services = 5;
  fopts.seed = 31;
  loggen::FleetGenerator fleet(fopts);
  const auto batch = fleet.take(800);

  engine.analyze_by_service(batch);
  const std::size_t after_first = pattern_store.pattern_count();
  const auto second = engine.analyze_by_service(batch);
  EXPECT_EQ(pattern_store.pattern_count(), after_first);
  EXPECT_EQ(second.analyzed, 0u);
  EXPECT_EQ(second.matched_existing, batch.size());
}

}  // namespace
}  // namespace seqrtg
