// Ablation: the two partitioning stages of AnalyzeByService (paper §III,
// Fig. 2). "Using this new method and performing the two rounds of
// partitioning has the added side effect of better quality patterns
// compared with processing them as a single group."
//
// Four configurations over the same labelled fleet sample:
//   A  single shared trie (seminal Analyze: no service, no length split)
//   B  by service only (length partitioning disabled)
//   C  by service + by token count (full AnalyzeByService)
//   D  C with a 4-thread pool (scaling column)
// Reported: wall time, discovered patterns, and grouping accuracy against
// the fleet's ground-truth (service, event) labels.
#include <cstdio>
#include <map>

#include "core/analyze_by_service.hpp"
#include "core/parser.hpp"
#include "eval/grouping_accuracy.hpp"
#include "loggen/fleet.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

#include "bench_common.hpp"

using namespace seqrtg;

namespace {

struct Config {
  const char* name;
  bool by_service;
  bool by_length;
  std::size_t threads;
};

struct Sample {
  std::vector<core::LogRecord> records;
  std::vector<std::string> truth;  // "serviceIdx/eventIdx"
};

Sample make_sample(std::size_t n) {
  loggen::FleetOptions opts;
  opts.services = 120;
  opts.seed = util::kDefaultSeed;
  loggen::FleetGenerator fleet(opts);
  Sample s;
  s.records.reserve(n);
  s.truth.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loggen::FleetRecord rec = fleet.next();
    s.truth.push_back(std::to_string(rec.service_idx) + "/" +
                      std::to_string(rec.event_idx));
    s.records.push_back(std::move(rec.record));
  }
  return s;
}

void run_config(const Config& cfg, const Sample& sample) {
  core::InMemoryRepository repo;
  core::EngineOptions opts;
  opts.threads = cfg.threads;
  opts.partition_by_length = cfg.by_length;
  core::Engine engine(&repo, opts);

  util::Stopwatch timer;
  if (cfg.by_service) {
    engine.analyze_by_service(sample.records);
  } else {
    engine.analyze_single_trie(sample.records);
  }
  const double seconds = timer.seconds();

  // Group every record by its matched pattern and score against truth.
  core::Parser parser(opts.scanner, opts.special);
  for (const std::string& svc : repo.services()) {
    for (const core::Pattern& p : repo.load_service(svc)) {
      parser.add_pattern(p);
    }
  }
  std::vector<std::string> predicted;
  predicted.reserve(sample.records.size());
  std::size_t unmatched = 0;
  for (const core::LogRecord& r : sample.records) {
    const std::string service = cfg.by_service ? r.service : "*";
    if (auto result = parser.parse(service, r.message)) {
      predicted.push_back(result->pattern->id());
    } else {
      predicted.push_back("um" + std::to_string(unmatched++));
    }
  }
  const double accuracy = eval::grouping_accuracy(predicted, sample.truth);

  std::printf("%-28s | %8.2f | %9zu | %9.3f\n", cfg.name, seconds,
              repo.pattern_count(), accuracy);
}

}  // namespace

int main() {
  constexpr std::size_t kMessages = 200000;
  const Sample sample = make_sample(kMessages);

  std::printf("Partitioning ablation — %zu messages, 120 services\n",
              kMessages);
  std::printf("%-28s | %8s | %9s | %9s\n", "configuration", "time [s]",
              "patterns", "accuracy");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');

  run_config({"A single shared trie", false, false, 1}, sample);
  run_config({"B by service only", true, false, 1}, sample);
  run_config({"C by service + length", true, true, 1}, sample);
  run_config({"D = C with 4 threads", true, true, 4}, sample);

  std::printf(
      "\nPaper claim: the two partitioning rounds give better-quality\n"
      "patterns than processing everything as a single group, while also\n"
      "bounding memory and time.\n");
  seqrtg::bench::write_bench_telemetry("ablation_partitioning");
  return 0;
}
