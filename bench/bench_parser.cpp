// Parser hot-path microbenchmarks: steady-state match throughput against a
// trained pattern database, for both the hit path (known traffic) and the
// miss path (unknown service / unknown shape, which falls through every
// match attempt). Both use the scratch-buffer parse() overload — the
// zero-allocation production configuration — and write their telemetry
// snapshot to BENCH_parser.json for scripts/bench_check.sh.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/analyze_by_service.hpp"
#include "core/parser.hpp"
#include "core/repository.hpp"
#include "loggen/fleet.hpp"

using namespace seqrtg;

namespace {

/// Trains a parser on 5000 fleet messages (one realistic service) and
/// returns it plus a probe batch drawn from the same generator.
struct TrainedParser {
  core::Parser parser;
  std::vector<core::LogRecord> probe;
};

TrainedParser make_trained_parser() {
  loggen::FleetOptions opts;
  opts.services = 1;
  opts.min_events_per_service = 30;
  opts.max_events_per_service = 40;
  loggen::FleetGenerator fleet(opts);
  const auto train = fleet.take(5000);
  core::InMemoryRepository repo;
  core::EngineOptions eopts;
  core::Engine engine(&repo, eopts);
  engine.analyze_by_service(train);
  TrainedParser out{core::Parser(eopts.scanner, eopts.special), {}};
  for (const std::string& svc : repo.services()) {
    for (const core::Pattern& p : repo.load_service(svc)) {
      out.parser.add_pattern(p);
    }
  }
  out.probe = fleet.take(1000);
  return out;
}

void BM_ParseHit(benchmark::State& state) {
  const TrainedParser t = make_trained_parser();
  core::TokenBuffer scratch;
  std::size_t i = 0;
  std::int64_t hits = 0;
  for (auto _ : state) {
    const auto& rec = t.probe[i++ % t.probe.size()];
    auto result = t.parser.parse(rec.service, rec.message, scratch);
    if (result) ++hits;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["hit_rate"] =
      state.iterations() > 0
          ? static_cast<double>(hits) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_ParseHit);

void BM_ParseMiss(benchmark::State& state) {
  // Same trained database, but probed with traffic from a different fleet
  // seedscape: the parser walks its indexes and falls through, which is the
  // expensive path in early production days (75-80% unmatched, Fig. 7).
  const TrainedParser t = make_trained_parser();
  loggen::FleetOptions opts;
  opts.services = 5;
  opts.seed = 0xDEADBEEF;
  loggen::FleetGenerator other(opts);
  const auto probe = other.take(1000);
  core::TokenBuffer scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = probe[i++ % probe.size()];
    benchmark::DoNotOptimize(
        t.parser.parse(rec.service, rec.message, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseMiss);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  bench::write_bench_telemetry("parser");
  return 0;
}
