#include "core/scanner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace seqrtg::core {
namespace {

std::vector<Token> scan(std::string_view msg) {
  return Scanner().scan(msg);
}

std::vector<TokenType> types_of(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const Token& t : tokens) out.push_back(t.type);
  return out;
}

TEST(Scanner, EmptyMessage) {
  EXPECT_TRUE(scan("").empty());
  EXPECT_TRUE(scan("   ").empty());
}

TEST(Scanner, SimpleWords) {
  const auto tokens = scan("connection refused");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].value, "connection");
  EXPECT_EQ(tokens[0].type, TokenType::Literal);
  EXPECT_FALSE(tokens[0].is_space_before);
  EXPECT_EQ(tokens[1].value, "refused");
  EXPECT_TRUE(tokens[1].is_space_before);
}

TEST(Scanner, TypedTokens) {
  const auto tokens =
      scan("from 192.168.0.1 port 51022 load 0.75 mac 00:0a:95:9d:68:16");
  const auto types = types_of(tokens);
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(types[1], TokenType::IPv4);
  EXPECT_EQ(types[3], TokenType::Integer);
  EXPECT_EQ(types[5], TokenType::Float);
  EXPECT_EQ(types[7], TokenType::Mac);
}

TEST(Scanner, TimeBeforeGeneral) {
  const auto tokens = scan("Jun 14 15:16:01 combo sshd");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::Time);
  EXPECT_EQ(tokens[0].value, "Jun 14 15:16:01");
  EXPECT_EQ(tokens[1].value, "combo");
}

TEST(Scanner, SpaceBeforeTracking) {
  const auto tokens = scan("a b");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_FALSE(tokens[0].is_space_before);
  EXPECT_TRUE(tokens[1].is_space_before);
}

TEST(Scanner, PunctuationBecomesOwnTokens) {
  const auto tokens = scan("(root) CMD");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].value, "(");
  EXPECT_EQ(tokens[1].value, "root");
  EXPECT_FALSE(tokens[1].is_space_before);
  EXPECT_EQ(tokens[2].value, ")");
  EXPECT_EQ(tokens[3].value, "CMD");
}

TEST(Scanner, ColonSplitsChunks) {
  const auto tokens = scan("ERROR: disk full");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].value, "ERROR");
  EXPECT_EQ(tokens[1].value, ":");
  EXPECT_FALSE(tokens[1].is_space_before);
}

TEST(Scanner, Ipv4WithPort) {
  const auto tokens = scan("dest /10.1.2.3:8080 ok");
  // "/10.1.2.3" is a literal chunk (leading slash), ":" splits, port int.
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1].value, "/10.1.2.3");
  EXPECT_EQ(tokens[2].value, ":");
  EXPECT_EQ(tokens[3].type, TokenType::Integer);
  EXPECT_EQ(tokens[3].value, "8080");
}

TEST(Scanner, BareIpv4WithPort) {
  const auto tokens = scan("10.1.2.3:8080");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::IPv4);
  EXPECT_EQ(tokens[2].type, TokenType::Integer);
}

TEST(Scanner, KeyValueSplitsAndRecordsKey) {
  const auto tokens = scan("port=22 user=root");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].value, "port");
  EXPECT_EQ(tokens[1].value, "=");
  EXPECT_EQ(tokens[2].value, "22");
  EXPECT_EQ(tokens[2].type, TokenType::Integer);
  EXPECT_EQ(tokens[2].key, "port");
  EXPECT_EQ(tokens[5].key, "user");
}

TEST(Scanner, KeyValueThroughQuotes) {
  const auto tokens = scan("tag=\"RILJ\"");
  // tag, =, ", RILJ, "
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].value, "RILJ");
  EXPECT_EQ(tokens[3].key, "tag");
}

TEST(Scanner, UuidStaysOneToken) {
  const auto tokens = scan("instance 015decf1-353e-665d-17e9-a8e281845aa0");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::Literal);
  EXPECT_EQ(tokens[1].value, "015decf1-353e-665d-17e9-a8e281845aa0");
}

TEST(Scanner, HexChunks) {
  const auto tokens = scan("session 0x14f05578bd80001 code 7d5f03e2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::Hex);
  EXPECT_EQ(tokens[3].type, TokenType::Hex);
}

TEST(Scanner, UrlToken) {
  const auto tokens = scan("fetch https://x.org/a/b?q=1 done");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::Url);
  EXPECT_EQ(tokens[1].value, "https://x.org/a/b?q=1");
}

TEST(Scanner, TrailingSentencePunctuationPeels) {
  const auto tokens = scan("finished in 5.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].value, "5");
  EXPECT_EQ(tokens[2].type, TokenType::Integer);
  EXPECT_EQ(tokens[3].value, ".");
  EXPECT_FALSE(tokens[3].is_space_before);
}

TEST(Scanner, PreprocessedWildcardToken) {
  const auto tokens = scan("took <*> ms");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::String);
  EXPECT_EQ(tokens[1].value, "<*>");
}

TEST(Scanner, WildcardDetectionCanBeDisabled) {
  ScannerOptions opts;
  opts.detect_preprocessed_wildcard = false;
  const auto tokens = Scanner(opts).scan("took <*> ms");
  // '<', '*', '>' come out as separate punctuation/literal tokens.
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1].value, "<");
  EXPECT_EQ(tokens[2].value, "*");
  EXPECT_EQ(tokens[3].value, ">");
}

TEST(Scanner, MultiLineTruncatesWithRestMarker) {
  const auto tokens = scan("first line here\nsecond line\nthird");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens.back().type, TokenType::Rest);
  // All content tokens come from the first line only.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_NE(tokens[i].value, "second");
    EXPECT_NE(tokens[i].value, "third");
  }
}

TEST(Scanner, TrailingNewlineAloneIsNotTruncation) {
  const auto tokens = scan("only line\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_NE(tokens.back().type, TokenType::Rest);
}

TEST(Scanner, MaxTokensGuard) {
  ScannerOptions opts;
  opts.max_tokens = 4;
  std::string long_msg;
  for (int i = 0; i < 100; ++i) long_msg += "tok ";
  const auto tokens = Scanner(opts).scan(long_msg);
  ASSERT_EQ(tokens.size(), 5u);  // 4 content tokens + Rest marker
  EXPECT_EQ(tokens.back().type, TokenType::Rest);
}

TEST(Scanner, LenientTimeOptionFlowsThrough) {
  ScannerOptions opts;
  opts.datetime.lenient_time = true;
  const auto strict = Scanner().scan("20171224-0:7:20:444 step");
  const auto lenient = Scanner(opts).scan("20171224-0:7:20:444 step");
  EXPECT_NE(strict[0].type, TokenType::Time);
  EXPECT_EQ(lenient[0].type, TokenType::Time);
  EXPECT_EQ(lenient[0].value, "20171224-0:7:20:444");
}

TEST(Scanner, PipeSeparatedFields) {
  const auto tokens = scan("Step_LSC|30002312|onStandStepChanged 3579");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].value, "Step_LSC");
  EXPECT_EQ(tokens[1].value, "|");
  EXPECT_EQ(tokens[2].type, TokenType::Integer);
  EXPECT_EQ(tokens[5].type, TokenType::Integer);
}

TEST(Scanner, Ipv6Token) {
  const auto tokens = scan("addr fe80::9d:68ff:fe16:1 up");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::IPv6);
}

TEST(Scanner, TabsCountAsSpaceBefore) {
  const auto tokens = scan("a\tb");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[1].is_space_before);
}

}  // namespace
}  // namespace seqrtg::core
