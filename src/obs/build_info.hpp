// Build identity + process lifetime metrics.
//
// When a trace or metrics dump comes back from a production host, the first
// question is "which build produced this?". seqrtg_build_info is the
// standard Prometheus idiom: a constant gauge of value 1 whose labels carry
// the identity (version, git describe, build type, sanitizer mode), joinable
// against any other series. Alongside it: process start time (unix) and an
// uptime gauge refreshed at scrape time.
#pragma once

#include <string>

namespace seqrtg::obs {

struct BuildInfo {
  const char* version;        // CMake project version
  const char* git_describe;   // `git describe --tags --always --dirty`
  const char* build_type;     // CMAKE_BUILD_TYPE ("" -> "unspecified")
  const char* sanitizer;      // SEQRTG_SANITIZE ("" -> "none")
};

/// Compile-time build identity of this binary.
const BuildInfo& build_info();

/// One-line human summary, e.g. "seqrtg 1.0.0 (abc1234, Release, none)".
std::string build_info_string();

/// Registers seqrtg_build_info, seqrtg_process_start_time_seconds and
/// seqrtg_process_uptime_seconds in the default registry. Idempotent;
/// call again at scrape time to refresh the uptime gauge.
void register_build_metrics();

}  // namespace seqrtg::obs
