// The Sequence parser: matches scanned messages against known patterns.
//
// Paper §III: "Sequence has its own parser to match new messages against
// existing known patterns. It follows a similar process as while learning
// the messages, by first tokenising the messages, but instead of
// discovering patterns, it attempts to match new messages to a known
// pattern."
//
// Patterns are compiled into a per-(service, token-count) match trie whose
// edges are either exact literal text or typed wildcards. Matching is a
// depth-first walk preferring literal edges over wildcards (most-specific
// wins); variable values are extracted along the way so the caller gets the
// parsed fields (the "small amount of information ... extracted from the
// message" of §II). Patterns ending in the %rest% marker match any suffix
// (multi-line handling, extension #6).
//
// Hot path: the trie is lazily compiled into a flat MatchProgram per
// service (core/matchprog.hpp) — interned literal ids, sorted edge runs and
// first-token jump tables replace per-node hashing and pointer chasing.
// add_pattern invalidates the program; the next match recompiles it. The
// trie walk remains as the reference implementation (differential-tested
// against the program) and as the fallback when SEQRTG_DISABLE_MATCHPROG
// is set.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/matchprog.hpp"
#include "core/pattern.hpp"
#include "core/scanner.hpp"
#include "core/special_tokens.hpp"
#include "core/token.hpp"
#include "util/interner.hpp"

namespace seqrtg::core {

struct ParseResult {
  /// The matched pattern (owned by the Parser; stable until clear()).
  const Pattern* pattern = nullptr;
  ParsedFields fields;
};

class Parser {
 public:
  explicit Parser(ScannerOptions scanner_opts = {},
                  SpecialTokenOptions special_opts = {});

  /// Compiles `p` into the match structure. Patterns are copied and owned.
  void add_pattern(const Pattern& p);

  /// Number of compiled patterns.
  std::size_t pattern_count() const { return owned_.size(); }

  /// Scans `message` and matches it against the patterns of `service`.
  /// Uses a thread-local scratch buffer; the convenience entry point for
  /// callers without their own.
  std::optional<ParseResult> parse(std::string_view service,
                                   std::string_view message) const;

  /// As above, but tokenising into the caller's reusable `scratch` buffer —
  /// the zero-allocation hot path for pipeline workers that parse many
  /// messages in a loop.
  std::optional<ParseResult> parse(std::string_view service,
                                   std::string_view message,
                                   TokenBuffer& scratch) const;

  /// Matches an already scanned-and-promoted token sequence.
  std::optional<ParseResult> match_tokens(std::string_view service,
                                          const std::vector<Token>& tokens) const;

  /// Scans and promotes exactly as the match path does (exposed so the
  /// analyser sees identical token sequences). Tokens view `message`.
  std::vector<Token> scan(std::string_view message) const;

  /// Buffer-reusing variant of scan(): tokenises and promotes into `out`.
  void scan_into(std::string_view message, TokenBuffer& out) const;

  void clear();

  /// Toggles the compiled match program for this instance (defaults to on
  /// unless SEQRTG_DISABLE_MATCHPROG is set in the environment). With it
  /// off every match takes the pointer-chasing trie walk — the reference
  /// path the differential tests compare against.
  void set_matchprog_enabled(bool on) { matchprog_enabled_ = on; }
  bool matchprog_enabled() const { return matchprog_enabled_; }

  /// Bumped on every pattern-set change (add_pattern / clear); compiled
  /// programs from an older epoch are invalid and lazily rebuilt.
  std::uint64_t pattern_epoch() const { return pattern_epoch_; }

 private:
  struct ServiceIndex {
    // Keyed by token count; patterns with %rest% live under the count of
    // tokens preceding the marker in a separate prefix index.
    std::map<std::size_t, MatchNode> exact;
    std::map<std::size_t, MatchNode> rest_prefix;
    /// The service's compiled program, published once compiled. nulled by
    /// add_pattern when the pattern set changes. The pointee is owned by
    /// `programs_` and never freed before the Parser dies, so a reader
    /// that loaded the pointer just before an invalidation finishes its
    /// match on the stale (but complete) program safely.
    mutable std::atomic<const MatchProgram*> program{nullptr};
  };

  bool match_walk(const MatchNode* node, const std::vector<Token>& tokens,
                  std::size_t i, ParsedFields* fields,
                  const Pattern** out) const;

  /// match_tokens without the telemetry counters (the public wrapper adds
  /// the match/miss accounting).
  std::optional<ParseResult> match_tokens_impl(
      std::string_view service, const std::vector<Token>& tokens) const;

  /// Double-checked lazy compile: returns the service's program, compiling
  /// and publishing it under `compile_mutex_` when absent.
  const MatchProgram* compile_service(const ServiceIndex& svc) const;

  Scanner scanner_;
  SpecialTokenOptions special_opts_;
  std::deque<Pattern> owned_;
  // unordered_map is node-based: ServiceIndex (with its atomic member)
  // never moves once inserted, and rehashing keeps node addresses stable.
  std::unordered_map<std::string, ServiceIndex, util::StringHash,
                     std::equal_to<>>
      services_;
  bool matchprog_enabled_;
  std::uint64_t pattern_epoch_ = 0;
  // Held by pointer so the Parser stays movable (benchmarks return trained
  // parsers by value).
  std::unique_ptr<std::mutex> compile_mutex_;
  /// Every program ever compiled, live and retired; see ServiceIndex.
  mutable std::deque<std::unique_ptr<MatchProgram>> programs_;
};

}  // namespace seqrtg::core
