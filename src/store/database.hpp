// Embedded relational database: named tables + SQL dialect + persistence.
//
// Substrate for RTG extension #2 ("Making Patterns and Statistics
// Persistent"). The supported SQL dialect covers exactly what the pattern
// workflow needs:
//
//   CREATE TABLE t (a TEXT PRIMARY KEY, b INTEGER, c REAL)
//   CREATE INDEX ON t (b)
//   INSERT INTO t VALUES (?, ?, ?)
//   SELECT a, b FROM t WHERE a = ? AND b = 3 ORDER BY c DESC LIMIT 10
//   UPDATE t SET b = ?, c = ? WHERE a = ?
//   DELETE FROM t WHERE a = ?
//
// '?' placeholders bind positionally. Persistence is a line-oriented
// snapshot file (save()/load()) with encoded values; tombstones compact on
// save.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "store/table.hpp"

namespace seqrtg::store {

struct QueryResult {
  /// Empty on success; human-readable message otherwise.
  std::string error;
  /// Column headers of a SELECT.
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// Rows inserted/updated/deleted by a mutation.
  std::int64_t affected = 0;

  bool ok() const { return error.empty(); }
};

class Database {
 public:
  /// Executes one SQL statement with positional parameters.
  QueryResult exec(std::string_view sql, const std::vector<Value>& params = {});

  bool has_table(std::string_view name) const;
  const Table* table(std::string_view name) const;

  /// Writes a snapshot of every table to `path`. Returns false on I/O error.
  bool save(const std::string& path) const;

  /// Replaces the database contents with the snapshot at `path`.
  /// Returns false (and leaves the database empty) on parse/I/O errors.
  bool load(const std::string& path);

  std::size_t table_count() const { return tables_.size(); }

 private:
  friend class SqlExecutor;
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace seqrtg::store
