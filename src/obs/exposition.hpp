// Exposition formats for the telemetry registry.
//
// Two renderers over MetricsRegistry::snapshot():
//  - Prometheus text exposition format (version 0.0.4): HELP/TYPE headers,
//    cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
//    histograms — directly scrapeable / pushable to a Pushgateway;
//  - the in-repo util::json writer, for BENCH_*.json sidecars and
//    programmatic consumers (histograms additionally carry interpolated
//    p50/p90/p99 so plots need no PromQL).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace seqrtg::obs {

/// Prometheus text exposition of the whole registry. Deterministic for a
/// given set of metric values (families sorted by name, instances by label
/// string).
std::string to_prometheus(const MetricsRegistry& registry);

/// JSON document: { "metrics": [ {name, type, help, instances:[...]} ] }.
util::Json to_json(const MetricsRegistry& registry);

/// Writes one exposition format to `path`. `format` is "prometheus" or
/// "json"; empty picks by extension (".json" -> json, else prometheus).
/// Returns false when the file cannot be written or the format is unknown.
bool write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path, std::string format = "");

}  // namespace seqrtg::obs
