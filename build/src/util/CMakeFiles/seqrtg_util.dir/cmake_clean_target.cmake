file(REMOVE_RECURSE
  "libseqrtg_util.a"
)
