// Minimal command-line flag parser for the seqrtg CLI.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, and free
// positional arguments. Flags are declared up front so typos are reported
// instead of silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace seqrtg::util {

class ArgParser {
 public:
  /// Declares a flag that takes a value; `help` feeds usage().
  void add_option(std::string name, std::string help,
                  std::string default_value = "");

  /// Declares a boolean flag (present = true).
  void add_flag(std::string name, std::string help);

  /// Parses argv-style arguments (without the program/subcommand names).
  /// Returns false and sets error() on unknown flags or missing values.
  bool parse(const std::vector<std::string>& args);

  /// Value of an option (declared default when absent).
  std::string get(std::string_view name) const;

  /// Integer-typed accessor; `fallback` when unset or unparsable.
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;

  /// Double-typed accessor.
  double get_double(std::string_view name, double fallback) const;

  bool get_flag(std::string_view name) const;

  /// True when the user supplied the option explicitly.
  bool has(std::string_view name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& error() const { return error_; }

  /// Renders declared flags for help output.
  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };
  std::map<std::string, Option> declared_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace seqrtg::util
