#include "core/validation.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace seqrtg::core {

ValidationReport validate_patterns(const std::vector<Pattern>& patterns,
                                   const ScannerOptions& scanner_opts,
                                   const SpecialTokenOptions& special_opts) {
  ValidationReport report;
  // All candidates go into one parser, per service, so cross-matches
  // surface exactly as syslog-ng's whole-database test would find them.
  Parser parser(scanner_opts, special_opts);
  for (const Pattern& p : patterns) parser.add_pattern(p);

  for (const Pattern& p : patterns) {
    const std::string own_id = p.id();
    bool clean = true;
    for (const std::string& example : p.examples) {
      ++report.examples_checked;
      const auto result = parser.parse(p.service, example);
      const std::string matched = result ? result->pattern->id() : "";
      if (matched != own_id) {
        report.conflicts.push_back({own_id, matched, example});
        clean = false;
      }
    }
    if (clean) ++report.clean_patterns;
  }
  return report;
}

std::vector<Pattern> resolve_conflicts(
    const std::vector<Pattern>& patterns,
    const ScannerOptions& scanner_opts,
    const SpecialTokenOptions& special_opts) {
  // "The most correct pattern would be promoted and the other discarded":
  // in each conflicting pair, keep the more specific pattern.
  const auto loses_to = [](const Pattern& a, const Pattern& b) {
    // true when `a` is less correct than `b`.
    const double ca = a.complexity();
    const double cb = b.complexity();
    if (ca != cb) return ca > cb;
    if (a.stats.match_count != b.stats.match_count) {
      return a.stats.match_count < b.stats.match_count;
    }
    return a.id() > b.id();
  };

  // Discarding a pattern changes what every remaining example resolves to
  // (a previously-shadowed pattern may now win, exposing a new conflict),
  // so a single validate-and-discard pass is not enough: iterate to a
  // fixpoint. Each round discards at least one pattern, so size()+1 rounds
  // always suffice — the last validate either comes back clean or the set
  // is empty (trivially clean).
  std::vector<Pattern> current = patterns;
  const std::size_t max_rounds = patterns.size() + 1;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const ValidationReport report =
        validate_patterns(current, scanner_opts, special_opts);
    if (report.ok()) return current;

    std::unordered_map<std::string, const Pattern*> by_id;
    for (const Pattern& p : current) by_id[p.id()] = &p;

    // A pattern that cannot re-match its own example is defective
    // regardless of what else survives: discard it outright.
    std::set<std::string> self_dead;
    // loser -> one of the patterns that beat it this round.
    std::map<std::string, std::string> beaten_by;
    for (const PatternConflict& conflict : report.conflicts) {
      if (conflict.matched_id.empty()) {
        self_dead.insert(conflict.pattern_id);
        continue;
      }
      const auto own_it = by_id.find(conflict.pattern_id);
      const auto other_it = by_id.find(conflict.matched_id);
      if (own_it == by_id.end() || other_it == by_id.end()) continue;
      if (loses_to(*own_it->second, *other_it->second)) {
        beaten_by.emplace(conflict.pattern_id, conflict.matched_id);
      } else {
        beaten_by.emplace(conflict.matched_id, conflict.pattern_id);
      }
    }

    std::set<std::string> discard = self_dead;
    // Only discard a loser whose winner survives this round. In a chain
    // (A loses to B, B loses to C) discarding both A and B would silently
    // lose A's coverage: with B gone, A may have no conflict left. Keep A
    // for re-validation next round instead.
    for (const auto& [loser, winner] : beaten_by) {
      if (beaten_by.count(winner) == 0 && self_dead.count(winner) == 0) {
        discard.insert(loser);
      }
    }
    if (discard.empty() && !beaten_by.empty()) {
      // Every loser's winner is itself a loser: a cycle. Break it by
      // discarding the single least-correct pattern so the round makes
      // progress; the next validation re-judges the rest.
      const Pattern* worst = nullptr;
      for (const auto& [loser, winner] : beaten_by) {
        const Pattern* candidate = by_id.at(loser);
        if (worst == nullptr || loses_to(*candidate, *worst)) {
          worst = candidate;
        }
      }
      discard.insert(worst->id());
    }
    if (discard.empty()) break;  // defensive: no progress possible

    std::vector<Pattern> survivors;
    survivors.reserve(current.size());
    for (Pattern& p : current) {
      if (discard.count(p.id()) == 0) survivors.push_back(std::move(p));
    }
    current = std::move(survivors);
  }
  return current;
}

}  // namespace seqrtg::core
