#include "core/parser.hpp"

#include <gtest/gtest.h>

namespace seqrtg::core {
namespace {

PatternToken constant(std::string text, bool space = true) {
  PatternToken t;
  t.is_variable = false;
  t.text = std::move(text);
  t.is_space_before = space;
  return t;
}

PatternToken variable(TokenType type, std::string name, bool space = true) {
  PatternToken t;
  t.is_variable = true;
  t.var_type = type;
  t.name = std::move(name);
  t.is_space_before = space;
  return t;
}

Pattern make_pattern(std::string service, std::vector<PatternToken> tokens) {
  Pattern p;
  p.service = std::move(service);
  p.tokens = std::move(tokens);
  return p;
}

class ParserTest : public ::testing::Test {
 protected:
  Parser parser_;
};

TEST_F(ParserTest, ExactConstantMatch) {
  parser_.add_pattern(make_pattern(
      "cron", {constant("job", false), constant("started")}));
  const auto result = parser_.parse("cron", "job started");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pattern->text(), "job started");
  EXPECT_TRUE(result->fields.empty());
}

TEST_F(ParserTest, TypedVariableMatchAndExtraction) {
  parser_.add_pattern(make_pattern(
      "sshd", {constant("login", false), constant("from"),
               variable(TokenType::IPv4, "srcip"), constant("port"),
               variable(TokenType::Integer, "srcport")}));
  const auto result = parser_.parse("sshd", "login from 10.1.2.3 port 22");
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->fields.size(), 2u);
  EXPECT_EQ(result->fields[0].first, "srcip");
  EXPECT_EQ(result->fields[0].second, "10.1.2.3");
  EXPECT_EQ(result->fields[1].first, "srcport");
  EXPECT_EQ(result->fields[1].second, "22");
}

TEST_F(ParserTest, NoMatchOnWrongService) {
  parser_.add_pattern(make_pattern("sshd", {constant("x", false)}));
  EXPECT_FALSE(parser_.parse("cron", "x").has_value());
}

TEST_F(ParserTest, NoMatchOnWrongLength) {
  parser_.add_pattern(make_pattern("s", {constant("a", false)}));
  EXPECT_FALSE(parser_.parse("s", "a b").has_value());
}

TEST_F(ParserTest, NoMatchOnTypeMismatch) {
  parser_.add_pattern(make_pattern(
      "s", {constant("v", false), variable(TokenType::IPv4, "ip")}));
  EXPECT_FALSE(parser_.parse("s", "v not-an-ip").has_value());
  EXPECT_TRUE(parser_.parse("s", "v 10.0.0.1").has_value());
}

TEST_F(ParserTest, LiteralPreferredOverWildcard) {
  parser_.add_pattern(make_pattern(
      "s", {constant("state", false), constant("on")}));
  parser_.add_pattern(make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v")}));
  const auto exact = parser_.parse("s", "state on");
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->pattern->text(), "state on");
  const auto wild = parser_.parse("s", "state off");
  ASSERT_TRUE(wild.has_value());
  EXPECT_EQ(wild->pattern->text(), "state %v%");
}

TEST_F(ParserTest, BacktracksWhenLiteralPathDeadEnds) {
  // "state on" + literal path exists but continues differently; the
  // wildcard alternative must be found by backtracking.
  parser_.add_pattern(make_pattern(
      "s", {constant("state", false), constant("on"), constant("fire")}));
  parser_.add_pattern(make_pattern(
      "s", {constant("state", false), variable(TokenType::String, "v"),
            constant("ok")}));
  const auto result = parser_.parse("s", "state on ok");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pattern->text(), "state %v% ok");
}

TEST_F(ParserTest, FloatVariableAcceptsInteger) {
  parser_.add_pattern(make_pattern(
      "s", {constant("took", false), variable(TokenType::Float, "t")}));
  EXPECT_TRUE(parser_.parse("s", "took 1.5").has_value());
  EXPECT_TRUE(parser_.parse("s", "took 2").has_value());
}

TEST_F(ParserTest, StringVariableAcceptsAnySingleToken) {
  parser_.add_pattern(make_pattern(
      "s", {constant("got", false), variable(TokenType::String, "v")}));
  EXPECT_TRUE(parser_.parse("s", "got word").has_value());
  EXPECT_TRUE(parser_.parse("s", "got 10.0.0.1").has_value());
  EXPECT_TRUE(parser_.parse("s", "got 42").has_value());
  EXPECT_FALSE(parser_.parse("s", "got two words").has_value());
}

TEST_F(ParserTest, RestPatternMatchesAnySuffix) {
  parser_.add_pattern(make_pattern(
      "s", {constant("stack", false), constant("trace"),
            variable(TokenType::Rest, "rest")}));
  const auto result =
      parser_.parse("s", "stack trace at line 42 in foo.cpp");
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->fields.empty());
  EXPECT_EQ(result->fields.back().first, "rest");
  EXPECT_EQ(result->fields.back().second, "at line 42 in foo.cpp");
}

TEST_F(ParserTest, RestPatternMatchesMultiLineMessages) {
  parser_.add_pattern(make_pattern(
      "s", {constant("error", false), variable(TokenType::Rest, "rest")}));
  EXPECT_TRUE(parser_.parse("s", "error first\nsecond\nthird").has_value());
}

TEST_F(ParserTest, RestPatternRequiresPrefixMatch) {
  parser_.add_pattern(make_pattern(
      "s", {constant("error", false), variable(TokenType::Rest, "rest")}));
  EXPECT_FALSE(parser_.parse("s", "warning stuff here").has_value());
}

TEST_F(ParserTest, ExactLengthPreferredOverRest) {
  parser_.add_pattern(make_pattern(
      "s", {constant("err", false), variable(TokenType::Integer, "code")}));
  parser_.add_pattern(make_pattern(
      "s", {constant("err", false), variable(TokenType::Rest, "rest")}));
  const auto result = parser_.parse("s", "err 42");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->fields.front().first, "code");
}

TEST_F(ParserTest, LongerRestPrefixBeatsShorter) {
  // A generic one-token-prefix rest pattern must not shadow the more
  // specific two-token one: candidate prefix indexes are walked
  // longest-first.
  parser_.add_pattern(make_pattern(
      "s", {constant("error", false), variable(TokenType::Rest, "generic")}));
  parser_.add_pattern(make_pattern(
      "s", {constant("error", false), constant("fatal"),
            variable(TokenType::Rest, "detail")}));
  const auto result = parser_.parse("s", "error fatal disk on fire");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->fields.back().first, "detail");
  EXPECT_EQ(result->fields.back().second, "disk on fire");
  // The generic pattern still catches everything else.
  const auto other = parser_.parse("s", "error something mild");
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->fields.back().first, "generic");
}

TEST_F(ParserTest, SpecialTokensMatchThroughPromotion) {
  parser_.add_pattern(make_pattern(
      "s", {constant("mail", false), constant("to"),
            variable(TokenType::Email, "rcpt")}));
  const auto result = parser_.parse("s", "mail to user@example.org");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->fields.front().second, "user@example.org");
}

TEST_F(ParserTest, TimeVariableMatchesTimestamps) {
  parser_.add_pattern(make_pattern(
      "s", {variable(TokenType::Time, "ts", false), constant("boot")}));
  EXPECT_TRUE(parser_.parse("s", "2021-01-12 06:25:56 boot").has_value());
  EXPECT_FALSE(parser_.parse("s", "notatime boot").has_value());
}

TEST_F(ParserTest, MultiplePatternsSameService) {
  for (int i = 0; i < 50; ++i) {
    parser_.add_pattern(make_pattern(
        "s", {constant("evt" + std::to_string(i), false),
              variable(TokenType::Integer, "n")}));
  }
  EXPECT_EQ(parser_.pattern_count(), 50u);
  const auto result = parser_.parse("s", "evt33 777");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pattern->text(), "evt33 %n%");
}

TEST_F(ParserTest, ClearEmptiesEverything) {
  parser_.add_pattern(make_pattern("s", {constant("x", false)}));
  parser_.clear();
  EXPECT_EQ(parser_.pattern_count(), 0u);
  EXPECT_FALSE(parser_.parse("s", "x").has_value());
}

TEST_F(ParserTest, DuplicatePatternsAreIdempotent) {
  const Pattern p = make_pattern("s", {constant("dup", false)});
  parser_.add_pattern(p);
  parser_.add_pattern(p);
  const auto result = parser_.parse("s", "dup");
  ASSERT_TRUE(result.has_value());
}

TEST(VariableMatches, TypeMatrix) {
  Token integer{TokenType::Integer, "42", false, ""};
  Token ip{TokenType::IPv4, "1.2.3.4", false, ""};
  Token word{TokenType::Literal, "word", false, ""};
  Token hex{TokenType::Hex, "deadbeef01", false, ""};
  Token long_int{TokenType::Integer, "12345678", false, ""};

  EXPECT_TRUE(variable_matches(TokenType::String, word));
  EXPECT_TRUE(variable_matches(TokenType::String, ip));
  EXPECT_TRUE(variable_matches(TokenType::Integer, integer));
  EXPECT_FALSE(variable_matches(TokenType::Integer, word));
  EXPECT_TRUE(variable_matches(TokenType::Float, integer));
  EXPECT_TRUE(variable_matches(TokenType::Hex, hex));
  EXPECT_TRUE(variable_matches(TokenType::Hex, long_int));
  EXPECT_FALSE(variable_matches(TokenType::Hex, word));
  EXPECT_FALSE(variable_matches(TokenType::Literal, word));
  EXPECT_FALSE(variable_matches(TokenType::Rest, word));
}

}  // namespace
}  // namespace seqrtg::core
