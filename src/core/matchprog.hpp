// Compiled match programs: the parser's hot path as flat data.
//
// The parser's pattern trie (MatchNode, below) is built for incremental
// insertion: per-node hash maps keyed by literal text, heap-allocated
// children, recursive pointer-chasing walks. That shape is right while
// patterns are being added but wrong for the match loop, where a production
// deployment replays millions of messages against a pattern set that
// changes rarely (the paper's CC-IN2P3 deployment re-learns in batches).
//
// MatchProgram::compile() flattens one service's tries into contiguous
// arrays:
//
//   - Literal edge text is interned once; during a match each Literal
//     token's interned id is resolved lazily on the first literal-edge probe
//     at its position and memoised for the rest of the match (at most one
//     hash probe per token, instead of one per trie node visited — and zero
//     for tokens the walk never probes, e.g. when no root fits the token
//     count). A token whose text was never seen in any pattern can skip
//     every literal edge in the program without a string comparison.
//   - A node's literal edges are a sorted run of (id, child) pairs inside
//     one shared array, binary-searched in place. Root nodes with many
//     edges (first-token dispatch, the widest fan-out) get a dense jump
//     table indexed by interned id — one load instead of a search.
//   - Variable edges carry a precomputed token-type accept bitmask, so the
//     common rejection is one AND instead of a switch.
//   - %rest% prefix programs are flattened alongside and tried
//     longest-prefix-first, exactly like the trie walk.
//
// The walk order (literal edge before wildcards, wildcards in insertion
// order, exact lengths before %rest%) is preserved node for node, so a
// compiled match returns the identical pattern and fields as the trie walk
// — a property the differential tests assert over every golden corpus.
//
// Concurrency: a MatchProgram is immutable after compile(). The Parser
// compiles lazily under a lock, publishes the program through an atomic
// pointer, and retires (but never frees) stale programs when the pattern
// set changes, so lane workers holding a stale pointer finish their match
// safely and pick up the recompiled program on the next message.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pattern.hpp"
#include "core/token.hpp"
#include "util/interner.hpp"

namespace seqrtg::core {

/// Extracted variable bindings of a successful match, in pattern order.
using ParsedFields = std::vector<std::pair<std::string, std::string>>;

/// True when a variable of type `var` accepts token `tok`. %string% accepts
/// any single token; %float% also accepts integers ("5" vs "5.0" in the same
/// field); %hex% also accepts all-digit runs that happen to contain no a-f.
bool variable_matches(TokenType var, const Token& tok);

/// The insertion-built pattern trie. One node per pattern prefix; shared by
/// the Parser (which grows it in add_pattern) and MatchProgram::compile()
/// (which flattens it).
struct MatchNode {
  // Transparent hashing: probed with the token's string_view during a
  // match, so the hot path never materialises a std::string key.
  std::unordered_map<std::string, std::unique_ptr<MatchNode>, util::StringHash,
                     std::equal_to<>>
      literal_edges;
  // Wildcard edges in insertion order; name kept for field extraction.
  struct VarEdge {
    TokenType type;
    std::string name;
    std::unique_ptr<MatchNode> node;
  };
  std::vector<VarEdge> var_edges;
  const Pattern* terminal = nullptr;
  /// Terminal reached via a %rest% marker: matches any token suffix.
  const Pattern* rest_terminal = nullptr;
  std::string rest_name;
};

class MatchProgram {
 public:
  /// Flattens one service's tries (`exact` keyed by token count,
  /// `rest_prefix` keyed by fixed-prefix length). The referenced Pattern
  /// objects must outlive the program; the trie itself may be mutated or
  /// destroyed afterwards.
  static std::unique_ptr<MatchProgram> compile(
      const std::map<std::size_t, MatchNode>& exact,
      const std::map<std::size_t, MatchNode>& rest_prefix);

  /// Matches `tokens`; on success fills `*pattern` and appends the bindings
  /// to `*fields` (cleared first). Returns false on no match. Semantics are
  /// identical to the trie walk.
  bool match(const std::vector<Token>& tokens, ParsedFields* fields,
             const Pattern** pattern) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  /// Roots wider than this get a dense jump table over interned ids.
  static constexpr std::size_t kJumpTableMinEdges = 8;

  struct LitEdge {
    util::StringInterner::Id text;
    std::uint32_t node;
  };
  struct VarEdge {
    TokenType type;
    /// Bit per TokenType this variable can accept (the %hex%-integer length
    /// rule is re-checked at match time).
    std::uint16_t accept_mask;
    std::uint32_t name;  // index into names_
    std::uint32_t node;
  };
  struct Node {
    std::uint32_t lit_begin = 0;
    std::uint32_t lit_count = 0;
    std::uint32_t var_begin = 0;
    std::uint32_t var_count = 0;
    /// Dense first-token dispatch: jump_begin indexes jump_ when not kNone;
    /// the slab spans all interned ids.
    std::uint32_t jump_begin = kNone;
    const Pattern* terminal = nullptr;
    const Pattern* rest_terminal = nullptr;
    std::uint32_t rest_name = kNone;
  };
  struct Root {
    std::size_t token_count;  // exact length, or fixed-prefix length
    std::uint32_t node;
  };

  std::uint32_t flatten(const MatchNode& src);
  void build_jump_tables();

  /// Per-match state shared by every walk frame; passed once by reference
  /// instead of widening the recursion signature. `ids` is the per-position
  /// memo of lazily resolved interner ids (kUnresolvedId until the first
  /// literal probe at that position).
  struct WalkCtx {
    const Token* tokens;
    std::uint32_t* ids;
    std::size_t end_i;
    bool rest;
    ParsedFields* fields;
    const Pattern** pattern;
    std::uint32_t* rest_name;
  };

  bool walk(const WalkCtx& ctx, std::uint32_t node_idx, std::size_t i) const;

  util::StringInterner interner_;
  std::vector<Node> nodes_;
  std::vector<LitEdge> lits_;
  std::vector<VarEdge> vars_;
  std::vector<std::uint32_t> jump_;
  std::vector<std::string> names_;
  std::vector<Root> exact_roots_;        // sorted by token_count
  std::vector<Root> rest_roots_;         // sorted by prefix length descending
};

}  // namespace seqrtg::core
