#include "core/token.hpp"

#include <gtest/gtest.h>

#include "core/scanner.hpp"

namespace seqrtg::core {
namespace {

TEST(TokenTypeTags, RoundTrip) {
  for (TokenType t :
       {TokenType::Literal, TokenType::Integer, TokenType::Float,
        TokenType::Hex, TokenType::Time, TokenType::IPv4, TokenType::IPv6,
        TokenType::Mac, TokenType::Url, TokenType::Email, TokenType::Host,
        TokenType::Path, TokenType::String, TokenType::Rest}) {
    EXPECT_EQ(token_type_from_tag(token_type_tag(t)), t);
  }
}

TEST(TokenTypeTags, UnknownTagIsLiteral) {
  EXPECT_EQ(token_type_from_tag("nonsense"), TokenType::Literal);
  EXPECT_EQ(token_type_from_tag(""), TokenType::Literal);
}

TEST(IsVariableType, OnlyLiteralIsConstant) {
  EXPECT_FALSE(is_variable_type(TokenType::Literal));
  EXPECT_TRUE(is_variable_type(TokenType::Integer));
  EXPECT_TRUE(is_variable_type(TokenType::String));
  EXPECT_TRUE(is_variable_type(TokenType::Rest));
}

TEST(Reconstruct, HonoursSpaceBefore) {
  std::vector<Token> tokens;
  tokens.push_back({TokenType::Literal, "port", false, ""});
  tokens.push_back({TokenType::Literal, "=", false, ""});
  tokens.push_back({TokenType::Integer, "22", false, "port"});
  tokens.push_back({TokenType::Literal, "open", true, ""});
  EXPECT_EQ(reconstruct(tokens), "port=22 open");
}

TEST(Reconstruct, EmptyInput) {
  EXPECT_EQ(reconstruct({}), "");
}

// Property: reconstruct(scan(m)) == m for single-line, single-spaced
// messages. This is RTG extension #3 — "ensure the exact reconstruction of
// the pattern structure" (whitespace management).
class ReconstructProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ReconstructProperty, ScanThenReconstructIsIdentity) {
  const std::string msg = GetParam();
  EXPECT_EQ(reconstruct(Scanner().scan(msg)), msg);
}

INSTANTIATE_TEST_SUITE_P(
    Messages, ReconstructProperty,
    ::testing::Values(
        "Accepted password for alice from 192.168.0.17 port 51022 ssh2",
        "(root) CMD (run-parts /etc/cron.hourly)",
        "session opened for user news by (uid=0)",
        "Jun 14 15:16:01 combo sshd(pam_unix)[19939]: check pass;",
        "Receiving block blk_-923842 src: /10.0.0.1:50010",
        "instance: 015decf1-353e-665d-17e9-a8e281845aa0 paused",
        "GET https://x.org/a?b=1 status: 200 len: 19444 time: 7.44",
        "key=value pairs=\"quoted text\" done",
        "Step_LSC|30002312|onStandStepChanged 3579",
        "wlan0 00:0a:95:9d:68:16 fe80::1 2001:db8::1",
        "jk2_init() Found child 1907 in scoreboard slot 7",
        "temperature (42) exceeds warning threshold",
        "0x14f05578bd80001 closed, 64* bytes",
        "[10.30 16:49:06] chrome.exe - proxy:443 close"));

TEST(Reconstruct, CollapsedWhitespaceIsDocumentedLoss) {
  // Runs of spaces collapse to one — the only reconstruction loss.
  EXPECT_EQ(reconstruct(Scanner().scan("a   b")), "a b");
}

}  // namespace
}  // namespace seqrtg::core
