// IPLoM: iterative partitioning log mining (Makanju et al., KDD 2009).
//
// Paper §V: "After tokenising, the algorithm takes four steps. First, it
// clusters the token sets that are of the same length, then it builds
// sub-clusters based on token position. In other words, it looks for a word
// that is common at the same position of many messages. The third step
// searches for bijective relationships between two tokens... The last step
// is to output the pattern. If all the values at the same position are the
// same, it is constant in the pattern, if there is a high variation, then
// it is marked as a variable."
#pragma once

#include "baselines/baseline.hpp"

namespace seqrtg::baselines {

struct IplomOptions {
  /// Partition support threshold: sub-partitions holding less than this
  /// fraction of the parent fall back into the parent's leftover bucket.
  double partition_support = 0.0;
  /// Lower/upper bounds on the 1-to-1 mapping decision of step 3.
  double lower_bound = 0.25;
  double upper_bound = 0.9;
};

std::unique_ptr<LogParser> make_iplom(const IplomOptions& opts);

}  // namespace seqrtg::baselines
