#include "testkit/scenario.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "loggen/corpus.hpp"
#include "util/strings.hpp"

namespace seqrtg::testkit {

namespace {

namespace fs = std::filesystem;

/// Portable seed mixing (std::hash would tie repro seeds to one standard
/// library): FNV-1a over the label folded into the scenario seed through
/// one splitmix64 step.
std::uint64_t mix_seed(std::uint64_t seed, std::string_view label) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::uint64_t state = seed ^ h;
  return util::splitmix64(state);
}

std::vector<std::string> resolved_datasets(const ScenarioOptions& opts) {
  if (!opts.datasets.empty()) return opts.datasets;
  std::vector<std::string> names;
  for (const loggen::DatasetSpec& spec : loggen::loghub_datasets()) {
    names.push_back(spec.name);
  }
  return names;
}

std::string join_datasets(const ScenarioOptions& opts) {
  if (opts.datasets.empty()) return "all";
  std::string out;
  for (const std::string& name : opts.datasets) {
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

std::uint64_t total_match_count(store::PatternStore& store) {
  std::uint64_t sum = 0;
  for (const std::string& service : store.services()) {
    for (const core::Pattern& p : store.load_service(service)) {
      sum += p.stats.match_count;
    }
  }
  return sum;
}

/// Seeded byte damage that keeps the message printable and non-empty so
/// the JSON round-trip and the scanner both stay in realistic territory.
void mutate_message(util::Rng& rng, std::string& message) {
  if (message.empty()) return;
  const std::size_t edits = 1 + rng.next_below(3);
  for (std::size_t e = 0; e < edits; ++e) {
    const std::size_t pos = rng.next_below(message.size());
    message[pos] = static_cast<char>(' ' + rng.next_below(95));
  }
}

ScenarioResult fail_result(const ScenarioOptions& opts, std::string oracle,
                           std::string detail, std::size_t corpus_size) {
  ScenarioResult result;
  result.ok = false;
  result.oracle = std::move(oracle);
  result.detail = std::move(detail);
  result.corpus_size = corpus_size;
  result.repro = repro_command(opts);
  return result;
}

/// RAII scratch directory for the recovery drill.
struct TempDir {
  fs::path path;
  explicit TempDir(std::uint64_t seed)
      : path(fs::temp_directory_path() /
             ("seqrtg_testkit_" + std::to_string(::getpid()) + "_" +
              std::to_string(seed))) {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// tear-wal / crash drill: stream into a durable store under the fault,
/// reopen cold, check the WAL-replay invariants.
ScenarioResult run_recovery(const ScenarioOptions& opts,
                            const std::vector<core::LogRecord>& corpus,
                            std::ostream* log) {
  TempDir dir(opts.seed);
  std::vector<core::LogRecord> fed = corpus;
  if (opts.fault.crash_after != 0 && opts.fault.crash_after < fed.size()) {
    fed.resize(opts.fault.crash_after);
  }

  std::uint64_t processed = 0;
  bool wedged = false;
  {
    store::PatternStore store;
    if (!store.open(dir.path.string())) {
      return fail_result(opts, "recovery",
                         "cannot open scratch store directory " +
                             dir.path.string(),
                         corpus.size());
    }
    if (auto hook = opts.fault.wal_hook()) {
      store.set_wal_fault_hook(std::move(hook));
    }
    ServeConfig config;
    config.lanes = opts.lanes;
    config.store = &store;
    config.queue_fault = opts.fault.queue_hook();
    const MiningResult served = mine_serve(fed, opts.engine, config);
    if (!served.started) {
      return fail_result(opts, "recovery", served.canonical, corpus.size());
    }
    if (served.accepted + served.dropped != fed.size() ||
        served.processed != served.accepted) {
      std::ostringstream detail;
      detail << "serve accounting diverged under fault: fed=" << fed.size()
             << " accepted=" << served.accepted
             << " processed=" << served.processed
             << " dropped=" << served.dropped;
      return fail_result(opts, "recovery:accounting", detail.str(),
                         corpus.size());
    }
    processed = served.processed;
    wedged = store.wal_wedged();
  }

  store::PatternStore reopened;
  if (!reopened.open(dir.path.string())) {
    return fail_result(opts, "recovery",
                       "cold reopen after the fault failed",
                       corpus.size());
  }
  const std::uint64_t recovered = total_match_count(reopened);
  if (log != nullptr) {
    *log << "  recovery: processed=" << processed
         << " recovered=" << recovered << " wal_wedged=" << wedged << "\n";
  }
  if (recovered > processed) {
    return fail_result(opts, "recovery:inflated",
                       "recovered match count " +
                           std::to_string(recovered) +
                           " exceeds records processed " +
                           std::to_string(processed),
                       corpus.size());
  }
  if (!wedged && recovered != processed) {
    return fail_result(
        opts, "recovery:lost",
        "no WAL fault fired yet recovery lost acknowledged records: "
        "recovered=" +
            std::to_string(recovered) +
            " processed=" + std::to_string(processed),
        corpus.size());
  }
  if (wedged && processed > 0 && recovered >= processed) {
    return fail_result(
        opts, "recovery:tear-not-observed",
        "the WAL wedged (a commit group was torn) but recovery still "
        "reports every processed record — the torn tail was not "
        "truncated: recovered=" +
            std::to_string(recovered) +
            " processed=" + std::to_string(processed),
        corpus.size());
  }
  ScenarioResult result;
  result.corpus_size = corpus.size();
  result.repro = repro_command(opts);
  return result;
}

}  // namespace

std::vector<core::LogRecord> compose_corpus(const ScenarioOptions& opts) {
  const std::vector<std::string> names = resolved_datasets(opts);
  std::vector<std::vector<core::LogRecord>> streams;
  for (std::size_t d = 0; d < names.size(); ++d) {
    const loggen::DatasetSpec* spec = loggen::find_dataset(names[d]);
    if (spec == nullptr) continue;  // validated by run_scenario
    const std::size_t share = opts.records / names.size() +
                              (d < opts.records % names.size() ? 1 : 0);
    const eval::LabeledCorpus corpus = loggen::generate_corpus(
        *spec, share, mix_seed(opts.seed, spec->name));
    std::vector<core::LogRecord> stream;
    stream.reserve(corpus.messages.size());
    for (const std::string& message : corpus.messages) {
      stream.push_back({spec->name, message});
    }
    streams.push_back(std::move(stream));
  }

  // Seeded cross-service interleave (each service's own order preserved —
  // the shape a shared ingest pipe actually delivers).
  util::Rng rng(mix_seed(opts.seed, "interleave"));
  std::vector<std::size_t> next(streams.size(), 0);
  std::size_t remaining = 0;
  for (const auto& stream : streams) remaining += stream.size();
  std::vector<core::LogRecord> corpus;
  corpus.reserve(remaining);
  while (remaining > 0) {
    std::uint64_t pick = rng.next_below(remaining);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      const std::size_t left = streams[s].size() - next[s];
      if (pick < left) {
        corpus.push_back(std::move(streams[s][next[s]++]));
        break;
      }
      pick -= left;
    }
    --remaining;
  }

  if (opts.mutation_rate > 0.0) {
    util::Rng mutator(mix_seed(opts.seed, "mutate"));
    for (core::LogRecord& record : corpus) {
      if (mutator.chance(opts.mutation_rate)) {
        mutate_message(mutator, record.message);
      }
    }
  }
  return corpus;
}

std::string repro_command(const ScenarioOptions& opts) {
  std::ostringstream out;
  out << "seqrtg testkit --seed " << opts.seed << " --datasets "
      << join_datasets(opts) << " --records " << opts.records
      << " --lanes " << opts.lanes << " --threads " << opts.threads;
  if (opts.mutation_rate > 0.0) {
    out << " --mutation-rate " << opts.mutation_rate;
  }
  if (!opts.fault.empty()) {
    out << " --fault '" << opts.fault.to_string() << "'";
  }
  if (!opts.run_soundness && !opts.run_idempotence && !opts.run_interleave &&
      !opts.run_evolution) {
    out << " --quick";
  }
  if (!opts.shrink) out << " --no-shrink";
  return out.str();
}

std::vector<core::LogRecord> shrink_failing(
    std::vector<core::LogRecord> records,
    const std::function<bool(const std::vector<core::LogRecord>&)>&
        still_fails,
    std::size_t max_probes) {
  if (records.empty() || max_probes == 0) return records;
  std::size_t probes = 0;
  std::size_t chunk = (records.size() + 1) / 2;
  while (chunk >= 1) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < records.size() && probes < max_probes;) {
      const std::size_t stop = std::min(records.size(), start + chunk);
      if (stop - start == records.size()) {  // never probe the empty set
        start = stop;
        continue;
      }
      std::vector<core::LogRecord> candidate;
      candidate.reserve(records.size() - (stop - start));
      candidate.insert(candidate.end(), records.begin(),
                       records.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       records.begin() + static_cast<std::ptrdiff_t>(stop),
                       records.end());
      ++probes;
      if (still_fails(candidate)) {
        records = std::move(candidate);
        removed_any = true;
        // The next chunk now occupies this slot; keep `start`.
      } else {
        start = stop;
      }
    }
    if (probes >= max_probes) break;
    if (chunk == 1) {
      if (!removed_any) break;
      continue;  // 1-granularity passes repeat until a fixpoint
    }
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return records;
}

ScenarioResult run_scenario(const ScenarioOptions& opts,
                            std::ostream* log) {
  for (const std::string& name : opts.datasets) {
    if (loggen::find_dataset(name) == nullptr) {
      return fail_result(opts, "config", "unknown dataset: " + name, 0);
    }
  }
  const std::vector<core::LogRecord> corpus = compose_corpus(opts);
  if (log != nullptr) {
    *log << "  corpus: " << corpus.size() << " record(s) from "
         << join_datasets(opts) << " (seed " << opts.seed << ")\n";
  }

  if (opts.fault.has_recovery_fault()) {
    return run_recovery(opts, corpus, log);
  }

  DifferentialOptions dopts;
  dopts.threads = opts.threads;
  dopts.lanes = opts.lanes;
  dopts.serve_queue_fault = opts.fault.queue_hook();
  // cluster@N turns the cluster leg on explicitly; a misroute fault with
  // no explicit size implies it (the fault targets the router).
  dopts.cluster_nodes = opts.fault.cluster_nodes != 0
                            ? static_cast<std::size_t>(
                                  opts.fault.cluster_nodes)
                            : (opts.fault.has_misroute() ? 3 : 0);
  dopts.cluster_route_fault = opts.fault.route_hook();
  // memlimit@B turns the governed leg on explicitly; a misaccount fault
  // with no explicit ceiling implies it (the fault targets the ledger,
  // and check_differential falls back to kDefaultGovernedCeiling).
  dopts.memlimit_bytes = opts.fault.memlimit_bytes;
  dopts.governed_misaccount = opts.fault.misaccount_hook();

  OracleVerdict verdict = check_differential(corpus, opts.engine, dopts);
  // Metamorphic oracles only make sense on an unfaulted pipeline.
  if (!verdict.has_value() && !opts.fault.has_drop() &&
      !opts.fault.has_misroute() && !opts.fault.has_misaccount()) {
    if (opts.run_soundness) {
      verdict = check_soundness(corpus, opts.engine);
    }
    if (!verdict.has_value() && opts.run_idempotence) {
      verdict = check_idempotence(corpus, opts.engine);
    }
    if (!verdict.has_value() && opts.run_interleave) {
      verdict = check_interleave_invariance(
          corpus, opts.engine, mix_seed(opts.seed, "interleave-oracle"));
    }
    if (!verdict.has_value() && opts.run_evolution) {
      verdict = check_evolution(corpus, opts.engine);
    }
  }
  if (!verdict.has_value()) {
    ScenarioResult result;
    result.corpus_size = corpus.size();
    result.repro = repro_command(opts);
    return result;
  }

  ScenarioResult result = fail_result(opts, verdict->oracle,
                                      verdict->detail, corpus.size());
  if (opts.shrink) {
    const std::string oracle = verdict->oracle;
    const auto still_fails =
        [&](const std::vector<core::LogRecord>& subset) {
          OracleVerdict v;
          if (util::starts_with(oracle, "differential") ||
              util::starts_with(oracle, "governance")) {
            v = check_differential(subset, opts.engine, dopts);
          } else if (oracle == "soundness") {
            v = check_soundness(subset, opts.engine);
          } else if (oracle == "idempotence") {
            v = check_idempotence(subset, opts.engine);
          } else if (oracle == "interleave-invariance") {
            v = check_interleave_invariance(
                subset, opts.engine,
                mix_seed(opts.seed, "interleave-oracle"));
          } else if (util::starts_with(oracle, "evolution")) {
            v = check_evolution(subset, opts.engine);
          } else {
            return false;
          }
          return v.has_value() && v->oracle == oracle;
        };
    result.shrunk =
        shrink_failing(corpus, still_fails, opts.max_shrink_probes);
    if (log != nullptr) {
      *log << "  shrunk: " << corpus.size() << " -> "
           << result.shrunk.size() << " record(s)\n";
    }
  }
  return result;
}

}  // namespace seqrtg::testkit
