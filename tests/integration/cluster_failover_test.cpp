// SIGKILL failover drill against the REAL `seqrtg` binary (fork/execv,
// path injected via SEQRTG_CLI_PATH).
//
// Topology under test: an in-process Router fronting a child-process
// primary (`serve --cluster-port --ship-to`) that WAL-ships every commit
// group to a child-process hot standby. The drill:
//
//   route wave ─► primary ──kWalGroup──► standby
//                SIGKILL -9
//   route wave ─────────failover───────► standby (keeps mining)
//
// Zero pattern loss is proven by cold-reopening both store directories
// after the dust settles: everything the primary ever committed (its WAL
// replay) must exist byte-identically on the standby. The quiescent drill
// asserts exact equality; the mid-stream drill asserts monotone
// containment (the standby kept mining the same service after takeover,
// so its match counts may only have grown).
#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "serve/http.hpp"
#include "serve/router.hpp"
#include "store/pattern_store.hpp"
#include "testkit/canonical.hpp"

#ifndef SEQRTG_CLI_PATH
#error "SEQRTG_CLI_PATH must point at the seqrtg binary"
#endif

namespace seqrtg {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("seqrtg_failover_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

/// A spawned `seqrtg serve` child with its stdout+stderr on a pipe.
class ServeChild {
 public:
  explicit ServeChild(const std::vector<std::string>& args) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<std::string> argv_store = args;
      argv_store.insert(argv_store.begin(), SEQRTG_CLI_PATH);
      std::vector<char*> argv;
      for (std::string& a : argv_store) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(SEQRTG_CLI_PATH, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
  }

  ~ServeChild() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  bool ok() const { return pid_ > 0 && out_fd_ >= 0; }
  pid_t pid() const { return pid_; }
  const std::string& output() const { return buffer_; }

  /// Reads child output until `needle` appears or `timeout` elapses.
  bool wait_for_output(const std::string& needle,
                       std::chrono::milliseconds timeout = 15000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (buffer_.find(needle) == std::string::npos) {
      const auto left = deadline - std::chrono::steady_clock::now();
      if (left <= 0ms) return false;
      pollfd pfd = {out_fd_, POLLIN, 0};
      const int rc = ::poll(
          &pfd, 1,
          static_cast<int>(
              std::chrono::duration_cast<std::chrono::milliseconds>(left)
                  .count()));
      if (rc <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(out_fd_, buf, sizeof buf);
      if (n <= 0) return buffer_.find(needle) != std::string::npos;
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Port printed after `label` in the serving line (-1 when absent).
  int port_after(const std::string& label) {
    const std::size_t at = buffer_.find(label);
    if (at == std::string::npos) return -1;
    return std::atoi(buffer_.c_str() + at + label.size());
  }

  /// SIGKILL, reaped; true when the child died by exactly that signal.
  bool sigkill() {
    if (pid_ <= 0) return false;
    if (::kill(pid_, SIGKILL) != 0) return false;
    int status = 0;
    if (::waitpid(pid_, &status, 0) != pid_) return false;
    pid_ = -1;
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  }

  /// SIGTERM and drain; true when the child exited cleanly (code 0).
  bool sigterm_and_wait() {
    if (pid_ <= 0) return false;
    if (::kill(pid_, SIGTERM) != 0) return false;
    int status = 0;
    if (::waitpid(pid_, &status, 0) != pid_) return false;
    pid_ = -1;
    // Keep draining the pipe so the drain report is inspectable.
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(out_fd_, buf, sizeof buf)) > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
};

std::vector<std::string> serve_args(const std::string& store_dir,
                                    const std::string& node_id,
                                    int ship_to = -1) {
  std::vector<std::string> args = {
      "serve",           "--store-dir",      store_dir,
      "--port",          "-1",               "--http-port",
      "0",               "--cluster-port",   "0",
      "--lanes",         "1",                "--batch",
      "8",               "--flush-interval", "100000",
      "--checkpoint-interval", "0",          "--node-id",
      node_id};
  if (ship_to >= 0) {
    args.push_back("--ship-to");
    args.push_back(std::to_string(ship_to));
  }
  return args;
}

/// Value of an un-labelled counter in a Prometheus exposition (-1 absent).
std::int64_t metric_value(const std::string& body, const std::string& name) {
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::atoll(line.c_str() + name.size() + 1);
    }
  }
  return -1;
}

/// "processed" field of a /healthz document (-1 when unreadable).
std::int64_t health_processed(int http_port) {
  const std::optional<std::string> body =
      serve::http_get(http_port, "/healthz");
  if (!body.has_value()) return -1;
  const std::size_t at = body->find("\"processed\":");
  if (at == std::string::npos) return -1;
  return std::atoll(body->c_str() + at + 12);
}

/// Polls `probe` until it returns true or ~15s elapse.
bool poll_until(const std::function<bool()>& probe) {
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (probe()) return true;
    std::this_thread::sleep_for(50ms);
  }
  return false;
}

void route_wave(serve::Router& router, const std::string& service,
                std::size_t count, std::size_t offset = 0) {
  for (std::size_t i = 0; i < count; ++i) {
    router.route_record(
        {service, "drill event " + std::to_string(offset + i) +
                      " from host-" + std::to_string(i % 4)});
  }
}

/// canonical_patterns lines keyed by (service, token_count, text), value =
/// match count. The canonical line format is service\tcount\ttokens\ttext.
std::map<std::tuple<std::string, std::string, std::string>, std::int64_t>
parse_canonical(const std::string& canonical) {
  std::map<std::tuple<std::string, std::string, std::string>, std::int64_t>
      out;
  std::istringstream lines(canonical);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream cols(line);
    std::string service;
    std::string count;
    std::string tokens;
    std::string text;
    if (!std::getline(cols, service, '\t')) continue;
    std::getline(cols, count, '\t');
    std::getline(cols, tokens, '\t');
    std::getline(cols, text);
    out[{service, tokens, text}] = std::atoll(count.c_str());
  }
  return out;
}

std::string reopen_canonical(const fs::path& dir) {
  store::PatternStore store;
  if (!store.open(dir.string())) return "<reopen failed>";
  return testkit::canonical_patterns(store);
}

TEST(ClusterFailover, QuiescentSigkillLosesNoCommittedPattern) {
  TempDir primary_dir("primary_a");
  TempDir standby_dir("standby_a");

  ServeChild standby(serve_args(standby_dir.path.string(), "standby"));
  ASSERT_TRUE(standby.ok());
  ASSERT_TRUE(standby.wait_for_output("serving")) << standby.output();
  const int standby_cluster = standby.port_after("cluster on 127.0.0.1:");
  const int standby_http = standby.port_after("metrics on 127.0.0.1:");
  ASSERT_GT(standby_cluster, 0) << standby.output();
  ASSERT_GT(standby_http, 0) << standby.output();

  ServeChild primary(
      serve_args(primary_dir.path.string(), "primary", standby_cluster));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(primary.wait_for_output("serving")) << primary.output();
  const int primary_cluster = primary.port_after("cluster on 127.0.0.1:");
  const int primary_http = primary.port_after("metrics on 127.0.0.1:");
  ASSERT_GT(primary_cluster, 0) << primary.output();
  ASSERT_GT(primary_http, 0) << primary.output();

  serve::RouterOptions ropts;
  ropts.shards = {primary_cluster};
  ropts.standbys = {standby_cluster};
  serve::Router router(std::move(ropts));
  std::string error;
  ASSERT_TRUE(router.start(&error)) << error;

  // Wave 1: 64 records = 8 full batches = 8 shippable commit groups.
  route_wave(router, "alpha", 64);
  ASSERT_TRUE(poll_until(
      [&] { return health_processed(primary_http) >= 64; }))
      << primary.output();
  std::int64_t shipped = 0;
  ASSERT_TRUE(poll_until([&] {
    const auto body = serve::http_get(primary_http, "/metrics");
    if (!body.has_value()) return false;
    shipped = metric_value(*body, "seqrtg_cluster_groups_shipped_total");
    return shipped >= 8;
  }));
  ASSERT_TRUE(poll_until([&] {
    const auto body = serve::http_get(standby_http, "/metrics");
    return body.has_value() &&
           metric_value(*body, "seqrtg_cluster_groups_applied_total") >=
               shipped;
  }));

  // The drill: kill -9, no drain, no checkpoint.
  ASSERT_TRUE(primary.sigkill());

  // Wave 2 (a different service): the router's first send probes the dead
  // link and promotes the standby, which keeps mining.
  route_wave(router, "beta", 32);
  EXPECT_EQ(router.failovers(), 1u);
  EXPECT_EQ(router.undeliverable(), 0u);
  ASSERT_TRUE(poll_until(
      [&] { return health_processed(standby_http) >= 32; }))
      << standby.output();
  const serve::RouterReport routed = router.stop();
  EXPECT_EQ(routed.forwarded, 96u);
  ASSERT_TRUE(standby.sigterm_and_wait()) << standby.output();

  // Cold reopen: the primary's WAL replay IS its committed state. Every
  // alpha row must exist on the standby byte-for-byte; beta rows prove
  // the takeover kept mining.
  const std::string primary_rows = reopen_canonical(primary_dir.path);
  const std::string standby_rows = reopen_canonical(standby_dir.path);
  ASSERT_NE(primary_rows, "<reopen failed>");
  ASSERT_NE(standby_rows, "<reopen failed>");
  EXPECT_FALSE(primary_rows.empty());
  std::string standby_alpha;
  bool saw_beta = false;
  std::istringstream lines(standby_rows);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("alpha\t", 0) == 0) standby_alpha += line + "\n";
    if (line.rfind("beta\t", 0) == 0) saw_beta = true;
  }
  EXPECT_EQ(standby_alpha, primary_rows)
      << testkit::first_diff(primary_rows, standby_alpha);
  EXPECT_TRUE(saw_beta) << standby_rows;
}

TEST(ClusterFailover, MidStreamSigkillKeepsEveryShippedGroup) {
  TempDir primary_dir("primary_b");
  TempDir standby_dir("standby_b");

  ServeChild standby(serve_args(standby_dir.path.string(), "standby"));
  ASSERT_TRUE(standby.ok());
  ASSERT_TRUE(standby.wait_for_output("serving")) << standby.output();
  const int standby_cluster = standby.port_after("cluster on 127.0.0.1:");
  const int standby_http = standby.port_after("metrics on 127.0.0.1:");
  ASSERT_GT(standby_cluster, 0) << standby.output();

  ServeChild primary(
      serve_args(primary_dir.path.string(), "primary", standby_cluster));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(primary.wait_for_output("serving")) << primary.output();
  const int primary_cluster = primary.port_after("cluster on 127.0.0.1:");
  const int primary_http = primary.port_after("metrics on 127.0.0.1:");
  ASSERT_GT(primary_cluster, 0) << primary.output();

  serve::RouterOptions ropts;
  ropts.shards = {primary_cluster};
  ropts.standbys = {standby_cluster};
  serve::Router router(std::move(ropts));
  std::string error;
  ASSERT_TRUE(router.start(&error)) << error;

  // One continuous stream of a single service, killed part-way: the
  // first 16 records (2 commit groups) land on the primary; the kill is
  // taken at a batch boundary so no commit is in flight, then the REST of
  // the stream fails over mid-flow.
  route_wave(router, "gamma", 16);
  ASSERT_TRUE(poll_until(
      [&] { return health_processed(primary_http) >= 16; }))
      << primary.output();
  std::int64_t shipped = 0;
  ASSERT_TRUE(poll_until([&] {
    const auto body = serve::http_get(primary_http, "/metrics");
    if (!body.has_value()) return false;
    shipped = metric_value(*body, "seqrtg_cluster_groups_shipped_total");
    return shipped >= 2;
  }));
  ASSERT_TRUE(poll_until([&] {
    const auto body = serve::http_get(standby_http, "/metrics");
    return body.has_value() &&
           metric_value(*body, "seqrtg_cluster_groups_applied_total") >=
               shipped;
  }));
  ASSERT_TRUE(primary.sigkill());

  route_wave(router, "gamma", 24, /*offset=*/16);
  EXPECT_EQ(router.failovers(), 1u);
  EXPECT_EQ(router.undeliverable(), 0u);
  ASSERT_TRUE(poll_until(
      [&] { return health_processed(standby_http) >= 24; }))
      << standby.output();
  const serve::RouterReport routed = router.stop();
  EXPECT_EQ(routed.forwarded, 40u);
  ASSERT_TRUE(standby.sigterm_and_wait()) << standby.output();

  // Zero loss, monotone form: the standby REPLAYED the primary's groups
  // and then kept mining the same service, so every pattern the primary
  // committed must exist on the standby with an equal-or-grown match
  // count (no evolution configured: patterns are never rewritten).
  const auto primary_rows =
      parse_canonical(reopen_canonical(primary_dir.path));
  const auto standby_rows =
      parse_canonical(reopen_canonical(standby_dir.path));
  ASSERT_FALSE(primary_rows.empty());
  for (const auto& [key, count] : primary_rows) {
    const auto it = standby_rows.find(key);
    ASSERT_NE(it, standby_rows.end())
        << "pattern lost in failover: " << std::get<0>(key) << " / "
        << std::get<2>(key);
    EXPECT_GE(it->second, count) << std::get<2>(key);
  }
}

}  // namespace
}  // namespace seqrtg
