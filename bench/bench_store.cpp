// Microbenchmarks for the embedded pattern store (extension #2 substrate):
// upsert, point lookup, service scan, match-count updates, SQL round
// trips, and snapshot persistence.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "store/pattern_store.hpp"
#include "util/rng.hpp"

using namespace seqrtg;

namespace {

core::Pattern make_pattern(std::size_t i) {
  core::Pattern p;
  p.service = "svc-" + std::to_string(i % 40);
  core::PatternToken c;
  c.is_variable = false;
  c.text = "event-" + std::to_string(i);
  p.tokens.push_back(c);
  core::PatternToken v;
  v.is_variable = true;
  v.var_type = core::TokenType::Integer;
  v.name = "n";
  v.is_space_before = true;
  p.tokens.push_back(v);
  p.stats.match_count = i + 1;
  p.examples = {"event-" + std::to_string(i) + " 42"};
  return p;
}

void BM_StoreUpsertNew(benchmark::State& state) {
  store::PatternStore pattern_store;
  std::size_t i = 0;
  for (auto _ : state) {
    pattern_store.upsert_pattern(make_pattern(i++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreUpsertNew);

void BM_StoreUpsertExisting(benchmark::State& state) {
  store::PatternStore pattern_store;
  for (std::size_t i = 0; i < 500; ++i) {
    pattern_store.upsert_pattern(make_pattern(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    pattern_store.upsert_pattern(make_pattern(i++ % 500));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreUpsertExisting);

void BM_StoreFindById(benchmark::State& state) {
  store::PatternStore pattern_store;
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < 1000; ++i) {
    const core::Pattern p = make_pattern(i);
    pattern_store.upsert_pattern(p);
    ids.push_back(p.id());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern_store.find(ids[i++ % ids.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreFindById);

void BM_StoreLoadService(benchmark::State& state) {
  store::PatternStore pattern_store;
  for (std::size_t i = 0; i < 1000; ++i) {
    pattern_store.upsert_pattern(make_pattern(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pattern_store.load_service("svc-" + std::to_string(i++ % 40)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreLoadService);

void BM_StoreRecordMatch(benchmark::State& state) {
  store::PatternStore pattern_store;
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < 500; ++i) {
    const core::Pattern p = make_pattern(i);
    pattern_store.upsert_pattern(p);
    ids.push_back(p.id());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    pattern_store.record_match(ids[i++ % ids.size()], 1, 1600000000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreRecordMatch);

void BM_SqlSelectIndexed(benchmark::State& state) {
  store::Database db;
  db.exec("CREATE TABLE t (id TEXT PRIMARY KEY, svc TEXT, n INTEGER)");
  db.exec("CREATE INDEX ON t (svc)");
  for (int i = 0; i < 2000; ++i) {
    db.exec("INSERT INTO t VALUES (?, ?, ?)",
            {store::Value("id" + std::to_string(i)),
             store::Value("svc" + std::to_string(i % 40)),
             store::Value(i)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.exec("SELECT id, n FROM t WHERE svc = ?",
                {store::Value("svc" + std::to_string(i++ % 40))}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SqlSelectIndexed);

void BM_StoreSaveLoad(benchmark::State& state) {
  store::PatternStore pattern_store;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
       ++i) {
    pattern_store.upsert_pattern(make_pattern(i));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "seqrtg_bench_store.db")
          .string();
  for (auto _ : state) {
    pattern_store.save(path);
    store::PatternStore loaded;
    loaded.load(path);
    benchmark::DoNotOptimize(loaded.pattern_count());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreSaveLoad)->Arg(100)->Arg(1000);

/// Scratch store directory for the durability benches.
struct BenchDir {
  std::filesystem::path path;
  explicit BenchDir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("seqrtg_bench_") + tag)) {
    std::filesystem::remove_all(path);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void BM_StoreDurableUpsert(benchmark::State& state) {
  // The acknowledged-write path: one WAL append + fsync per upsert.
  BenchDir dir("durable_upsert");
  store::PatternStore pattern_store;
  if (!pattern_store.open(dir.path.string())) {
    state.SkipWithError("open failed");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    pattern_store.upsert_pattern(make_pattern(i++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreDurableUpsert);

void BM_StoreCheckpoint(benchmark::State& state) {
  // Snapshot rotation: write-to-temp + fsync + rename + WAL truncation.
  BenchDir dir("checkpoint");
  store::PatternStore pattern_store;
  if (!pattern_store.open(dir.path.string())) {
    state.SkipWithError("open failed");
    return;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
       ++i) {
    pattern_store.upsert_pattern(make_pattern(i));
  }
  for (auto _ : state) {
    pattern_store.checkpoint();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreCheckpoint)->Arg(1000);

void BM_StoreWalReplay(benchmark::State& state) {
  // Cold-start recovery with an un-checkpointed WAL tail of range(0)
  // commit groups.
  BenchDir dir("replay");
  {
    store::PatternStore writer;
    if (!writer.open(dir.path.string())) {
      state.SkipWithError("open failed");
      return;
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
         ++i) {
      writer.upsert_pattern(make_pattern(i));
    }
  }
  for (auto _ : state) {
    store::PatternStore recovered;
    recovered.open(dir.path.string());
    benchmark::DoNotOptimize(recovered.pattern_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreWalReplay)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  bench::write_bench_telemetry("store");
  return 0;
}
