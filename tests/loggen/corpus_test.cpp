#include "loggen/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace seqrtg::loggen {
namespace {

TEST(Datasets, SixteenInPaperOrder) {
  const auto& all = loghub_datasets();
  ASSERT_EQ(all.size(), 16u);
  EXPECT_EQ(all.front().name, "HDFS");
  EXPECT_EQ(all.back().name, "Proxifier");
}

TEST(Datasets, FindByName) {
  EXPECT_NE(find_dataset("Linux"), nullptr);
  EXPECT_EQ(find_dataset("NotADataset"), nullptr);
}

TEST(Datasets, EveryDatasetHasEvents) {
  for (const DatasetSpec& spec : loghub_datasets()) {
    EXPECT_GE(spec.events.size(), 6u) << spec.name;
    EXPECT_FALSE(spec.header.empty()) << spec.name;
  }
}

TEST(GenerateCorpus, SizesAndLabels) {
  const auto corpus =
      generate_corpus(*find_dataset("Apache"), 500, util::kDefaultSeed);
  EXPECT_EQ(corpus.messages.size(), 500u);
  EXPECT_EQ(corpus.preprocessed.size(), 500u);
  EXPECT_EQ(corpus.event_ids.size(), 500u);
  for (const std::string& e : corpus.event_ids) {
    EXPECT_EQ(e[0], 'E');
  }
}

TEST(GenerateCorpus, DeterministicForSeed) {
  const auto a =
      generate_corpus(*find_dataset("HDFS"), 200, 12345);
  const auto b =
      generate_corpus(*find_dataset("HDFS"), 200, 12345);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.preprocessed, b.preprocessed);
  EXPECT_EQ(a.event_ids, b.event_ids);
}

TEST(GenerateCorpus, DifferentSeedsDiffer) {
  const auto a = generate_corpus(*find_dataset("HDFS"), 200, 1);
  const auto b = generate_corpus(*find_dataset("HDFS"), 200, 2);
  EXPECT_NE(a.messages, b.messages);
}

TEST(GenerateCorpus, PreprocessedDropsHeaderAndMarksFields) {
  const auto corpus =
      generate_corpus(*find_dataset("OpenSSH"), 300, util::kDefaultSeed);
  bool saw_marker = false;
  for (std::size_t i = 0; i < corpus.messages.size(); ++i) {
    // Raw has the syslog header; pre-processed starts at the content.
    EXPECT_GT(corpus.messages[i].size(), corpus.preprocessed[i].size());
    if (corpus.preprocessed[i].find("<*>") != std::string::npos) {
      saw_marker = true;
    }
  }
  EXPECT_TRUE(saw_marker);
}

TEST(GenerateCorpus, ZipfSkewsEventFrequencies) {
  const auto corpus =
      generate_corpus(*find_dataset("BGL"), 2000, util::kDefaultSeed);
  std::size_t e1 = 0;
  std::set<std::string> distinct;
  for (const std::string& e : corpus.event_ids) {
    if (e == "E1") ++e1;
    distinct.insert(e);
  }
  EXPECT_GT(e1, 2000u / 10) << "rank-1 event must dominate";
  EXPECT_GT(distinct.size(), 5u) << "tail events must appear";
}

TEST(GenerateCorpus, HealthAppTimestampsLackLeadingZeros) {
  // The documented raw-log failure mode (paper §IV): time parts without
  // leading zeros must actually occur in the generated stream.
  const auto corpus =
      generate_corpus(*find_dataset("HealthApp"), 500, util::kDefaultSeed);
  bool saw_unpadded = false;
  for (const std::string& m : corpus.messages) {
    // Header shape: yyyymmdd-H:M:S:ms| — a one-digit part is unpadded.
    const std::size_t dash = m.find('-');
    ASSERT_NE(dash, std::string::npos);
    const std::size_t colon = m.find(':', dash);
    ASSERT_NE(colon, std::string::npos);
    if (colon - dash == 2) saw_unpadded = true;  // 1-digit hour
  }
  EXPECT_TRUE(saw_unpadded);
}

TEST(GenerateCorpus, ProxifierHasAlnumIntAlternation) {
  const auto corpus =
      generate_corpus(*find_dataset("Proxifier"), 2000, util::kDefaultSeed);
  bool saw_star = false;
  bool saw_plain = false;
  for (const std::string& m : corpus.messages) {
    if (m.find("bytes") == std::string::npos) continue;
    if (m.find("* bytes") != std::string::npos) {
      saw_star = true;
    } else {
      saw_plain = true;
    }
  }
  EXPECT_TRUE(saw_star) << "some byte counts must carry the '*' suffix";
  EXPECT_TRUE(saw_plain) << "some byte counts must be pure integers";
}

TEST(ExpandTemplate, LiteralPassThrough) {
  GenContext ctx{util::Rng(1)};
  std::string raw;
  std::string pre;
  expand_template("fixed text only", ctx, &raw, &pre);
  EXPECT_EQ(raw, "fixed text only");
  EXPECT_EQ(pre, "fixed text only");
}

TEST(ExpandTemplate, PlaceholderBecomesMarkerInPre) {
  GenContext ctx{util::Rng(1)};
  std::string raw;
  std::string pre;
  expand_template("port {port} open", ctx, &raw, &pre);
  EXPECT_EQ(pre, "port <*> open");
  EXPECT_NE(raw, pre);
  EXPECT_TRUE(util::starts_with(raw, "port "));
}

TEST(ExpandTemplate, IntRangeRespected) {
  GenContext ctx{util::Rng(7)};
  for (int i = 0; i < 200; ++i) {
    std::string raw;
    expand_template("{int:10-19}", ctx, &raw, nullptr);
    const int v = std::stoi(raw);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 19);
  }
}

TEST(ExpandTemplate, OneofPicksFromClosedSet) {
  GenContext ctx{util::Rng(9)};
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    std::string raw;
    std::string pre;
    expand_template("{oneof:on|off}", ctx, &raw, &pre);
    seen.insert(raw);
    EXPECT_EQ(pre, "<*>");
  }
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count("on"));
  EXPECT_TRUE(seen.count("off"));
}

TEST(ExpandTemplate, OptTogglesPresenceInBothVariants) {
  GenContext ctx{util::Rng(11)};
  std::set<std::string> raws;
  for (int i = 0; i < 100; ++i) {
    std::string raw;
    std::string pre;
    expand_template("a {opt:x }b", ctx, &raw, &pre);
    raws.insert(raw);
    EXPECT_EQ(raw, pre) << "opt emits constants into both variants";
  }
  EXPECT_EQ(raws.size(), 2u);
  EXPECT_TRUE(raws.count("a x b"));
  EXPECT_TRUE(raws.count("a b"));
}

TEST(ExpandTemplate, IntlistVariesLength) {
  GenContext ctx{util::Rng(13)};
  std::set<std::size_t> lengths;
  for (int i = 0; i < 100; ++i) {
    std::string pre;
    expand_template("{intlist:2-4}", ctx, nullptr, &pre);
    lengths.insert(util::split_whitespace(pre).size());
  }
  EXPECT_GE(lengths.size(), 2u);
  for (std::size_t n : lengths) {
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 4u);
  }
}

TEST(ExpandTemplate, UnknownPlaceholderEmittedVerbatim) {
  GenContext ctx{util::Rng(1)};
  std::string raw;
  expand_template("{bogus}", ctx, &raw, nullptr);
  EXPECT_EQ(raw, "{bogus}");
}

TEST(ExpandTemplate, TimestampAdvancesWithClock) {
  GenContext ctx{util::Rng(1)};
  std::string a;
  expand_template("{ts_iso}", ctx, &a, nullptr);
  ctx.clock += 3600;
  std::string b;
  expand_template("{ts_iso}", ctx, &b, nullptr);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace seqrtg::loggen
