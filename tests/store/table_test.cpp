#include "store/table.hpp"

#include <gtest/gtest.h>

namespace seqrtg::store {
namespace {

Schema people_schema() {
  Schema s;
  s.columns = {{"id", ValueType::Text},
               {"age", ValueType::Integer},
               {"city", ValueType::Text}};
  s.primary_key = 0;
  return s;
}

TEST(Schema, ColumnIndex) {
  const Schema s = people_schema();
  EXPECT_EQ(s.column_index("id"), 0);
  EXPECT_EQ(s.column_index("city"), 2);
  EXPECT_EQ(s.column_index("nope"), -1);
}

TEST(Table, InsertAndLookup) {
  Table t(people_schema());
  EXPECT_TRUE(t.insert({Value("a"), Value(30), Value("lyon")}));
  EXPECT_TRUE(t.insert({Value("b"), Value(25), Value("paris")}));
  EXPECT_EQ(t.size(), 2u);
  const auto id = t.find_pk(Value("b"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(t.row(*id)[1].as_int(), 25);
  EXPECT_FALSE(t.find_pk(Value("zz")).has_value());
}

TEST(Table, PrimaryKeyViolationRejected) {
  Table t(people_schema());
  EXPECT_TRUE(t.insert({Value("a"), Value(1), Value("x")}));
  EXPECT_FALSE(t.insert({Value("a"), Value(2), Value("y")}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Table, ArityMismatchRejected) {
  Table t(people_schema());
  EXPECT_FALSE(t.insert({Value("a"), Value(1)}));
}

TEST(Table, FindEqScansWithoutIndex) {
  Table t(people_schema());
  t.insert({Value("a"), Value(30), Value("lyon")});
  t.insert({Value("b"), Value(30), Value("paris")});
  t.insert({Value("c"), Value(40), Value("lyon")});
  EXPECT_EQ(t.find_eq("age", Value(30)).size(), 2u);
  EXPECT_EQ(t.find_eq("city", Value("lyon")).size(), 2u);
  EXPECT_TRUE(t.find_eq("age", Value(99)).empty());
  EXPECT_TRUE(t.find_eq("bogus", Value(1)).empty());
}

TEST(Table, SecondaryIndexMatchesScan) {
  Table t(people_schema());
  t.insert({Value("a"), Value(30), Value("lyon")});
  t.insert({Value("b"), Value(30), Value("paris")});
  const auto before = t.find_eq("age", Value(30));
  ASSERT_TRUE(t.add_index("age"));
  const auto after = t.find_eq("age", Value(30));
  EXPECT_EQ(before, after);
  // Index stays correct across later inserts.
  t.insert({Value("c"), Value(30), Value("nice")});
  EXPECT_EQ(t.find_eq("age", Value(30)).size(), 3u);
}

TEST(Table, AddIndexUnknownColumn) {
  Table t(people_schema());
  EXPECT_FALSE(t.add_index("bogus"));
}

TEST(Table, UpdateMaintainsIndexes) {
  Table t(people_schema());
  t.add_index("city");
  t.insert({Value("a"), Value(30), Value("lyon")});
  const RowId id = *t.find_pk(Value("a"));
  EXPECT_TRUE(t.update_row(id, {Value("a"), Value(31), Value("paris")}));
  EXPECT_TRUE(t.find_eq("city", Value("lyon")).empty());
  EXPECT_EQ(t.find_eq("city", Value("paris")).size(), 1u);
}

TEST(Table, UpdateRejectsPkCollision) {
  Table t(people_schema());
  t.insert({Value("a"), Value(1), Value("x")});
  t.insert({Value("b"), Value(2), Value("y")});
  const RowId id = *t.find_pk(Value("b"));
  EXPECT_FALSE(t.update_row(id, {Value("a"), Value(2), Value("y")}));
  // Changing the pk to a fresh value is allowed.
  EXPECT_TRUE(t.update_row(id, {Value("c"), Value(2), Value("y")}));
  EXPECT_TRUE(t.find_pk(Value("c")).has_value());
  EXPECT_FALSE(t.find_pk(Value("b")).has_value());
}

TEST(Table, EraseTombstonesRow) {
  Table t(people_schema());
  t.add_index("city");
  t.insert({Value("a"), Value(1), Value("x")});
  t.insert({Value("b"), Value(2), Value("x")});
  const RowId id = *t.find_pk(Value("a"));
  t.erase(id);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.find_pk(Value("a")).has_value());
  EXPECT_EQ(t.find_eq("city", Value("x")).size(), 1u);
  // Pk becomes reusable after erase.
  EXPECT_TRUE(t.insert({Value("a"), Value(9), Value("z")}));
}

TEST(Table, AllRowsSkipsTombstones) {
  Table t(people_schema());
  t.insert({Value("a"), Value(1), Value("x")});
  t.insert({Value("b"), Value(2), Value("y")});
  t.erase(*t.find_pk(Value("a")));
  const auto rows = t.all_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.row(rows[0])[0].as_text(), "b");
}

TEST(Table, SnapshotInInsertionOrder) {
  Table t(people_schema());
  t.insert({Value("z"), Value(1), Value("x")});
  t.insert({Value("a"), Value(2), Value("y")});
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ((*snap[0])[0].as_text(), "z");
  EXPECT_EQ((*snap[1])[0].as_text(), "a");
}

TEST(Table, KeylessTableAllowsDuplicates) {
  Schema s;
  s.columns = {{"v", ValueType::Integer}};
  Table t(s);
  EXPECT_TRUE(t.insert({Value(1)}));
  EXPECT_TRUE(t.insert({Value(1)}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.find_pk(Value(1)).has_value());
}

}  // namespace
}  // namespace seqrtg::store
