// Dataset evaluation driver: runs Sequence-RTG (or a baseline) over a
// labelled corpus and computes its grouping accuracy, replicating the
// methodology of the paper's §IV "Accuracy" experiments.
#pragma once

#include <string>
#include <vector>

#include "core/analyze_by_service.hpp"
#include "baselines/baseline.hpp"

namespace seqrtg::eval {

/// A labelled corpus: parallel arrays of messages and ground-truth event
/// ids, as in the LogHub/logparser benchmark (16 services x 2000 entries).
struct LabeledCorpus {
  std::string name;
  std::vector<std::string> messages;
  /// Pre-processed variant with common fields replaced by "<*>" (Table II's
  /// first column); empty when not generated.
  std::vector<std::string> preprocessed;
  std::vector<std::string> event_ids;
};

/// Groups `messages` with Sequence-RTG: one AnalyzeByService pass over the
/// corpus (single service), then each message is parsed against the
/// discovered patterns; its group is the matched pattern id (unmatched
/// messages each form a singleton group). Returns per-message group labels.
std::vector<std::string> group_with_sequence_rtg(
    const std::vector<std::string>& messages,
    const core::EngineOptions& opts, std::string_view service = "eval");

/// Accuracy of Sequence-RTG on a corpus variant.
double sequence_rtg_accuracy(const std::vector<std::string>& messages,
                             const std::vector<std::string>& event_ids,
                             const core::EngineOptions& opts);

/// Accuracy of a baseline parser on a corpus variant.
double baseline_accuracy(baselines::LogParser& parser,
                         const std::vector<std::string>& messages,
                         const std::vector<std::string>& event_ids);

}  // namespace seqrtg::eval
