#include "core/ingest.hpp"

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace seqrtg::core {

namespace {

struct IngestMetrics {
  obs::Counter& accepted;
  obs::Counter& malformed;
};

IngestMetrics& ingest_metrics() {
  auto& reg = obs::default_registry();
  static IngestMetrics m{
      reg.counter("seqrtg_ingest_accepted_total",
                  "Stream lines parsed into a {service,message} record"),
      reg.counter("seqrtg_ingest_malformed_total",
                  "Stream lines rejected: not valid JSON or missing the "
                  "service/message fields")};
  return m;
}

}  // namespace

std::string record_to_json(const LogRecord& record) {
  std::string out = "{\"message\":\"";
  out += util::json_escape(record.message);
  out += "\",\"service\":\"";
  out += util::json_escape(record.service);
  out += "\"}";
  return out;
}

std::optional<LogRecord> JsonStreamIngester::parse_line(
    std::string_view line) {
  const std::string_view trimmed = util::trim(line);
  if (trimmed.empty()) return std::nullopt;
  const util::JsonParseResult parsed = util::json_parse(trimmed);
  if (!parsed.ok() || !parsed.value.is_object()) return std::nullopt;
  const util::Json* service = parsed.value.find("service");
  const util::Json* message = parsed.value.find("message");
  if (service == nullptr || message == nullptr || !service->is_string() ||
      !message->is_string()) {
    return std::nullopt;
  }
  LogRecord record;
  record.service = service->as_string();
  record.message = message->as_string();
  return record;
}

std::optional<LogRecord> JsonStreamIngester::parse_and_count_line(
    std::string_view line, IngestStats& stats) {
  auto record = parse_line(line);
  if (record.has_value()) {
    ++stats.accepted;
    if (obs::telemetry_enabled()) ingest_metrics().accepted.inc();
  } else if (!util::trim(line).empty()) {
    ++stats.malformed;
    if (obs::telemetry_enabled()) ingest_metrics().malformed.inc();
  }
  return record;
}

std::vector<LogRecord> JsonStreamIngester::read_batch(std::istream& in) {
  std::vector<LogRecord> batch;
  batch.reserve(batch_size_);
  std::string line;
  while (batch.size() < batch_size_ && std::getline(in, line)) {
    auto record = parse_and_count_line(line, stats_);
    if (record.has_value()) batch.push_back(std::move(*record));
  }
  return batch;
}

}  // namespace seqrtg::core
