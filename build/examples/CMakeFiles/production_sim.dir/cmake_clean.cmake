file(REMOVE_RECURSE
  "CMakeFiles/production_sim.dir/production_sim.cpp.o"
  "CMakeFiles/production_sim.dir/production_sim.cpp.o.d"
  "production_sim"
  "production_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
