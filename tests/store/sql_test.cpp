#include "store/sql.hpp"

#include <gtest/gtest.h>

namespace seqrtg::store {
namespace {

SqlStatement parse_ok(std::string_view sql) {
  std::string error;
  const auto stmt = sql_parse(sql, &error);
  EXPECT_TRUE(stmt.has_value()) << sql << " -> " << error;
  return stmt.value_or(SqlStatement{});
}

void parse_fail(std::string_view sql) {
  std::string error;
  EXPECT_FALSE(sql_parse(sql, &error).has_value()) << sql;
  EXPECT_FALSE(error.empty());
}

TEST(SqlLex, TokenKinds) {
  std::vector<SqlToken> tokens;
  std::string error;
  ASSERT_TRUE(sql_lex("SELECT a, 'str''x', 42, -1.5, ? FROM t", &tokens,
                      &error));
  EXPECT_EQ(tokens[0].type, SqlTokenType::Keyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, SqlTokenType::Identifier);
  EXPECT_EQ(tokens[3].type, SqlTokenType::StringLit);
  EXPECT_EQ(tokens[3].text, "str'x");
  EXPECT_EQ(tokens[5].type, SqlTokenType::NumberLit);
  EXPECT_EQ(tokens[7].text, "-1.5");
  EXPECT_EQ(tokens[9].type, SqlTokenType::Placeholder);
  EXPECT_EQ(tokens.back().type, SqlTokenType::End);
}

TEST(SqlLex, KeywordsCaseInsensitive) {
  std::vector<SqlToken> tokens;
  std::string error;
  ASSERT_TRUE(sql_lex("select * from t", &tokens, &error));
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[2].text, "FROM");
}

TEST(SqlLex, UnterminatedString) {
  std::vector<SqlToken> tokens;
  std::string error;
  EXPECT_FALSE(sql_lex("SELECT 'oops", &tokens, &error));
}

TEST(SqlParse, CreateTable) {
  const auto stmt = parse_ok(
      "CREATE TABLE patterns (pid TEXT PRIMARY KEY, cnt INTEGER, "
      "score REAL)");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::CreateTable);
  EXPECT_EQ(stmt.create_table.table, "patterns");
  ASSERT_EQ(stmt.create_table.columns.size(), 3u);
  EXPECT_EQ(stmt.create_table.columns[0].second, ValueType::Text);
  EXPECT_EQ(stmt.create_table.columns[1].second, ValueType::Integer);
  EXPECT_EQ(stmt.create_table.columns[2].second, ValueType::Real);
  EXPECT_EQ(stmt.create_table.primary_key, 0);
}

TEST(SqlParse, CreateIndex) {
  const auto stmt = parse_ok("CREATE INDEX ON t (col)");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::CreateIndex);
  EXPECT_EQ(stmt.create_index.table, "t");
  EXPECT_EQ(stmt.create_index.column, "col");
}

TEST(SqlParse, InsertWithPlaceholdersAndLiterals) {
  const auto stmt =
      parse_ok("INSERT INTO t VALUES (?, 'text', 42, NULL, ?)");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::Insert);
  EXPECT_EQ(stmt.placeholder_count, 2u);
  ASSERT_EQ(stmt.insert.values.size(), 5u);
  EXPECT_TRUE(stmt.insert.values[0].is_placeholder);
  EXPECT_EQ(stmt.insert.values[1].literal.as_text(), "text");
  EXPECT_EQ(stmt.insert.values[2].literal.as_int(), 42);
  EXPECT_TRUE(stmt.insert.values[3].literal.is_null());
  EXPECT_EQ(stmt.insert.values[4].placeholder_index, 1u);
}

TEST(SqlParse, SelectFull) {
  const auto stmt = parse_ok(
      "SELECT a, b FROM t WHERE x = ? AND y = 3 ORDER BY b DESC LIMIT 10");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::Select);
  EXPECT_FALSE(stmt.select.star);
  ASSERT_EQ(stmt.select.columns.size(), 2u);
  ASSERT_EQ(stmt.select.where.size(), 2u);
  EXPECT_TRUE(stmt.select.where[0].is_placeholder);
  EXPECT_EQ(stmt.select.where[1].literal.as_int(), 3);
  EXPECT_EQ(stmt.select.order_by, "b");
  EXPECT_TRUE(stmt.select.order_desc);
  EXPECT_EQ(stmt.select.limit, 10);
}

TEST(SqlParse, SelectStar) {
  const auto stmt = parse_ok("SELECT * FROM t");
  EXPECT_TRUE(stmt.select.star);
  EXPECT_TRUE(stmt.select.where.empty());
  EXPECT_EQ(stmt.select.limit, -1);
}

TEST(SqlParse, Update) {
  const auto stmt =
      parse_ok("UPDATE t SET a = ?, b = 'v' WHERE pid = ?");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::Update);
  ASSERT_EQ(stmt.update.sets.size(), 2u);
  EXPECT_EQ(stmt.update.sets[0].first, "a");
  EXPECT_EQ(stmt.placeholder_count, 2u);
  // Placeholder order: SET items first, then WHERE.
  EXPECT_EQ(stmt.update.sets[0].second.placeholder_index, 0u);
  EXPECT_EQ(stmt.update.where[0].placeholder_index, 1u);
}

TEST(SqlParse, Delete) {
  const auto stmt = parse_ok("DELETE FROM t WHERE a = 'x'");
  EXPECT_EQ(stmt.kind, SqlStatement::Kind::Delete);
  ASSERT_EQ(stmt.del.where.size(), 1u);
}

TEST(SqlParse, DeleteAll) {
  const auto stmt = parse_ok("DELETE FROM t");
  EXPECT_TRUE(stmt.del.where.empty());
}

TEST(SqlParse, TrailingSemicolonTolerated) {
  parse_ok("SELECT * FROM t;");
}

TEST(SqlParse, Malformed) {
  parse_fail("");
  parse_fail("DROP TABLE t");                  // unsupported verb
  parse_fail("SELECT FROM t");                 // missing columns
  parse_fail("SELECT * FROM");                 // missing table
  parse_fail("INSERT INTO t VALUES (1");       // unclosed paren
  parse_fail("CREATE TABLE t (a BOGUS)");      // unknown type
  parse_fail("SELECT * FROM t WHERE a");       // incomplete clause
  parse_fail("SELECT * FROM t LIMIT x");       // non-numeric limit
  parse_fail("SELECT * FROM t extra");         // trailing tokens
  parse_fail("CREATE TABLE t (a TEXT PRIMARY KEY, b TEXT PRIMARY KEY)");
  parse_fail("UPDATE t WHERE a = 1");          // missing SET
}

}  // namespace
}  // namespace seqrtg::store
