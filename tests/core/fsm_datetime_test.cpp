#include "core/fsm_datetime.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace seqrtg::core {
namespace {

std::size_t match_strict(std::string_view s) {
  return match_datetime(s, DateTimeOptions{});
}

std::size_t match_lenient(std::string_view s) {
  DateTimeOptions opts;
  opts.lenient_time = true;
  return match_datetime(s, opts);
}

// Full-string layouts that must match exactly in strict mode.
class FullMatchTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FullMatchTest, ConsumesWholeString) {
  const std::string s = GetParam();
  EXPECT_EQ(match_strict(s), s.size()) << s;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, FullMatchTest,
    ::testing::Values(
        "2021-01-12 06:25:56",              // SQL style
        "2021-01-12T06:25:56",              // ISO-8601
        "2021-01-12T06:25:56.123",          // fraction
        "2021-01-12T06:25:56.123Z",         // zulu
        "2021-01-12T06:25:56+01:00",        // numeric zone
        "2021-01-12 06:25:56,123",          // Zookeeper comma fraction
        "2005-06-03-15.42.50.675872",       // BGL
        "2021/01/12 06:25:56",              // slash date
        "17/06/09 20:10:40",                // Spark two-digit year
        "12/Jan/2021:06:25:56 +0100",       // Apache access
        "Sun Dec 04 04:47:44 2005",         // Apache error / asctime
        "Jun 14 15:16:01",                  // syslog
        "Jan  2 06:25:56",                  // syslog padded day
        "03-17 16:13:38.811",               // Android
        "20171224-00:07:20:444",            // HealthApp (padded)
        "10.30 16:49:06",                   // Proxifier
        "2016-09-28",                       // date only
        "2005.11.09",                       // Thunderbird date
        "06:25:56",                         // bare time
        "06:25:56.123",                     // bare time with fraction
        "11:11:11,333"));                   // bare time comma fraction

// Strings that must NOT match at all.
class NoMatchTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NoMatchTest, DoesNotMatch) {
  EXPECT_EQ(match_strict(GetParam()), 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    NonTimes, NoMatchTest,
    ::testing::Values("hello", "123456", "1.2.3.4", "99:99:99",
                      "2021-13-40 06:25:56",  // month/day out of range
                      "12:30:45abc",          // glued identifier
                      "2021-01-12-rack7",     // date glued to id
                      "", "-", "ab:cd:ef"));

TEST(DateTimeStrict, RejectsMissingLeadingZero) {
  // The documented Sequence limitation (paper §IV): HealthApp stamps like
  // 20171224-0:7:20:444 have single-digit time parts.
  EXPECT_EQ(match_strict("20171224-0:7:20:444"), 0u);
  EXPECT_EQ(match_strict("6:7:20"), 0u);
}

TEST(DateTimeLenient, AcceptsMissingLeadingZero) {
  // Future work §VI: "review and modify the date/time state machine to
  // make it accept single digit time parts."
  EXPECT_EQ(match_lenient("20171224-0:7:20:444"),
            std::string("20171224-0:7:20:444").size());
  EXPECT_EQ(match_lenient("6:7:20"), std::string("6:7:20").size());
}

TEST(DateTimeLenient, StillMatchesPaddedForms) {
  EXPECT_EQ(match_lenient("06:25:56"), 8u);
  EXPECT_EQ(match_lenient("2021-01-12 06:25:56"), 19u);
}

TEST(DateTime, MatchStopsAtBoundary) {
  // Trailing punctuation/boundaries stay outside the match.
  EXPECT_EQ(match_strict("06:25:56,"), 8u);
  EXPECT_EQ(match_strict("06:25:56]"), 8u);
  EXPECT_EQ(match_strict("2021-01-12 06:25:56 INFO"), 19u);
}

TEST(DateTime, LongestLayoutWins) {
  // "2021-01-12 06:25:56" must match as one stamp, not as the date-only
  // prefix.
  EXPECT_EQ(match_strict("2021-01-12 06:25:56"), 19u);
  // Fraction is consumed when present.
  EXPECT_EQ(match_strict("06:25:56.123456"), 15u);
}

TEST(DateTime, ApacheZoneOptional) {
  EXPECT_EQ(match_strict("12/Jan/2021:06:25:56"), 20u);
}

TEST(DateTime, MonthNamesCaseInsensitive) {
  EXPECT_GT(match_strict("JAN  2 06:25:56"), 0u);
  EXPECT_GT(match_strict("jan  2 06:25:56"), 0u);
}

TEST(DateTime, AllMonthNames) {
  for (const char* m : {"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul",
                        "Aug", "Sep", "Oct", "Nov", "Dec"}) {
    const std::string s = std::string(m) + " 14 15:16:01";
    EXPECT_EQ(match_strict(s), s.size()) << s;
  }
}

TEST(DateTime, InvalidTimePartValues) {
  EXPECT_EQ(match_strict("25:70:99"), 0u);  // minute > 60
}

TEST(DateTime, EpochSecondsAreNotTimes) {
  // Bare integers stay integers (HPC logs carry epoch stamps; the scanner
  // types them Integer, not Time).
  EXPECT_EQ(match_strict("1131566461"), 0u);
}

}  // namespace
}  // namespace seqrtg::core
