#include "baselines/spell.hpp"

#include <gtest/gtest.h>

namespace seqrtg::baselines {
namespace {

TEST(Spell, GroupsSameTemplateMessages) {
  auto spell = make_spell();
  const auto groups = spell->parse({
      "Connected to node17 in 12 ms",
      "Connected to node93 in 7 ms",
  });
  EXPECT_EQ(groups[0], groups[1]);
}

TEST(Spell, TemplateShrinksToCommonSubsequence) {
  auto spell = make_spell();
  spell->parse({
      "Connected to node17 in 12 ms",
      "Connected to node93 in 7 ms",
  });
  const auto templates = spell->templates();
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0], "Connected to <*> in <*> ms");
}

TEST(Spell, SeparatesUnrelatedMessages) {
  auto spell = make_spell();
  const auto groups = spell->parse({
      "disk failure on device sda",
      "user login from terminal tty1",
  });
  EXPECT_NE(groups[0], groups[1]);
}

TEST(Spell, HandlesDifferentLengthsOfSameEvent) {
  // LCS-based matching tolerates token-count differences (unlike
  // length-partitioned algorithms).
  auto spell = make_spell();
  const auto groups = spell->parse({
      "job finished tasks 1 2 3 done",
      "job finished tasks 1 2 3 4 5 done",
  });
  EXPECT_EQ(groups[0], groups[1]);
}

TEST(Spell, WildcardTokensNeverMatch) {
  // Two unrelated pre-processed templates share only "<*>" fillers; they
  // must not merge.
  auto spell = make_spell();
  const auto groups = spell->parse({
      "alpha <*> bravo <*> charlie",
      "delta <*> echo <*> foxtrot",
  });
  EXPECT_NE(groups[0], groups[1]);
}

TEST(Spell, BidirectionalThresholdBlocksAbsorption) {
  auto spell = make_spell();
  const auto groups = spell->parse({
      "the quick brown fox jumps over the lazy dog today ok",
      "the dog ok",  // shares 3 tokens but the object is much longer
  });
  EXPECT_NE(groups[0], groups[1]);
}

TEST(Spell, TauControlsJoining) {
  SpellOptions strict;
  strict.tau = 0.9;
  auto spell = make_spell(strict);
  const auto groups = spell->parse({
      "send data to host alpha",
      "send data to host bravo",
  });
  // 4/5 = 0.8 < 0.9: separate under a strict tau.
  EXPECT_NE(groups[0], groups[1]);

  auto loose = make_spell(SpellOptions{0.5});
  const auto groups2 = loose->parse({
      "send data to host alpha",
      "send data to host bravo",
  });
  EXPECT_EQ(groups2[0], groups2[1]);
}

TEST(Spell, ParseResetsState) {
  auto spell = make_spell();
  spell->parse({"a b c", "d e f"});
  const auto groups = spell->parse({"x y z"});
  EXPECT_EQ(groups[0], 0);
  EXPECT_EQ(spell->templates().size(), 1u);
}

TEST(Spell, EmptyInput) {
  auto spell = make_spell();
  EXPECT_TRUE(spell->parse({}).empty());
}

}  // namespace
}  // namespace seqrtg::baselines
