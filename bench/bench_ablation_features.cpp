// Feature ablations for the limitations and future-work items the paper
// calls out (§IV Limitations, §VI Conclusion):
//
//  1. Lenient datetime FSM ("review and modify the date/time state machine
//     to make it accept single digit time parts") — measured on the
//     HealthApp raw corpus whose timestamps defeat the strict FSM.
//  2. merge_mixed_alnum ("alphanumeric fields where it is common for the
//     data to be fully numeric in some cases may result in the production
//     of two patterns for the same event") — measured on Proxifier raw.
//  3. Path FSM ("a fourth finite state machine to deal with the many
//     variations of what can be considered as a 'path'") — pattern counts
//     on a mount event with a low-cardinality path field.
//  4. semi_constant_split ("tokens that exhibit semi-constant values ...
//     create as many patterns as there are variations") — pattern counts
//     on a worker event whose node-id field takes three values.
#include <cstdio>

#include "core/analyze_by_service.hpp"
#include "eval/dataset_eval.hpp"
#include "loggen/corpus.hpp"
#include "util/rng.hpp"

#include "bench_common.hpp"

using namespace seqrtg;

namespace {

double accuracy(const char* dataset, const core::EngineOptions& opts,
                bool raw = true) {
  const eval::LabeledCorpus corpus = loggen::generate_corpus(
      *loggen::find_dataset(dataset), 2000, util::kDefaultSeed);
  return eval::sequence_rtg_accuracy(raw ? corpus.messages
                                         : corpus.preprocessed,
                                     corpus.event_ids, opts);
}

std::size_t pattern_count_for(const std::vector<std::string>& messages,
                              const core::EngineOptions& opts) {
  core::InMemoryRepository repo;
  core::Engine engine(&repo, opts);
  std::vector<core::LogRecord> batch;
  for (const std::string& m : messages) batch.push_back({"svc", m});
  engine.analyze_by_service(batch);
  return repo.pattern_count();
}

/// One event whose only variable is a low-cardinality path (the paper's
/// path limitation: "some may remain as static text and generate multiple
/// patterns for a single event").
std::vector<std::string> path_corpus() {
  std::vector<std::string> out;
  const char* paths[] = {"/var/lib/docker/overlay2", "/srv/data/pool/a",
                         "/opt/app/releases/current"};
  for (int i = 0; i < 60; ++i) {
    out.push_back(std::string("volume mounted at ") + paths[i % 3] +
                  " read-write");
  }
  return out;
}

/// One event with a semi-constant field: a node id taking only three
/// values (future work §VI — "tokens for which a variable only takes a few
/// different values... it would be more interesting to create as many
/// patterns as there are variations").
std::vector<std::string> semi_constant_corpus() {
  std::vector<std::string> out;
  const char* nodes[] = {"n12", "n77", "n03"};
  for (int i = 0; i < 60; ++i) {
    out.push_back(std::string("worker ") + nodes[i % 3] + " joined ring " +
                  std::to_string(100 + i));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Feature ablations (future-work switches)\n");
  std::printf("%-46s | %9s\n", "configuration", "value");
  for (int i = 0; i < 60; ++i) std::putchar('-');
  std::putchar('\n');

  {
    core::EngineOptions strict;
    core::EngineOptions lenient;
    lenient.scanner.datetime.lenient_time = true;
    std::printf("%-46s | %9.3f\n",
                "1. HealthApp raw accuracy, strict datetime",
                accuracy("HealthApp", strict));
    std::printf("%-46s | %9.3f\n",
                "1. HealthApp raw accuracy, lenient datetime",
                accuracy("HealthApp", lenient));
  }
  {
    core::EngineOptions base;
    core::EngineOptions merged;
    merged.analyzer.merge_mixed_alnum = true;
    std::printf("%-46s | %9.3f\n",
                "2. Proxifier raw accuracy, seminal split",
                accuracy("Proxifier", base));
    std::printf("%-46s | %9.3f\n",
                "2. Proxifier raw accuracy, merge_mixed_alnum",
                accuracy("Proxifier", merged));
  }
  {
    // Low-cardinality paths: without the path FSM they sit below every
    // literal-merge threshold and each value becomes its own pattern.
    core::EngineOptions with_path;
    core::EngineOptions without_path;
    without_path.special.detect_path = false;
    without_path.analyzer.merge_variable_literals = false;
    std::printf("%-46s | %9zu\n",
                "3. mount-event pattern count, path FSM on",
                pattern_count_for(path_corpus(), with_path));
    std::printf("%-46s | %9zu\n",
                "3. mount-event pattern count, path FSM off",
                pattern_count_for(path_corpus(), without_path));
  }
  {
    core::EngineOptions base;
    core::EngineOptions semi;
    semi.analyzer.semi_constant_split = true;
    semi.analyzer.semi_constant_max = 3;
    std::printf("%-46s | %9zu\n",
                "4. worker-event pattern count, merged",
                pattern_count_for(semi_constant_corpus(), base));
    std::printf("%-46s | %9zu\n",
                "4. worker-event pattern count, semi-const split",
                pattern_count_for(semi_constant_corpus(), semi));
  }
  std::printf(
      "\nExpected: (1) lenient recovers the HealthApp raw collapse;\n"
      "(2) merging mixed alnum/int fields repairs the Proxifier split;\n"
      "(3) the path FSM keeps path-bearing events to one pattern each;\n"
      "(4) semi-constant splitting yields more, more-specific patterns.\n");
  seqrtg::bench::write_bench_telemetry("ablation_features");
  return 0;
}
