#include "core/analyze_by_service.hpp"

#include <algorithm>
#include <map>

#include "core/parser.hpp"
#include "util/thread_pool.hpp"

namespace seqrtg::core {

Engine::Engine(PatternRepository* repo, EngineOptions opts)
    : repo_(repo), opts_(opts) {}

Engine::ServiceOutcome Engine::process_service(
    const std::string& service,
    const std::vector<const LogRecord*>& records) const {
  ServiceOutcome outcome;
  outcome.service = service;
  outcome.report.records = records.size();
  outcome.report.services = 1;

  // Load this service's known patterns into a local parser (read snapshot;
  // stats updates are collected and applied once at the end of the batch).
  Parser parser(opts_.scanner, opts_.special);
  for (const Pattern& p : repo_->load_service(service)) {
    parser.add_pattern(p);
  }

  // Second partitioning: per-token-count analysis tries for the unmatched.
  std::map<std::size_t, AnalyzerTrie> tries;
  std::map<std::string, std::uint64_t> match_counts;

  for (const LogRecord* record : records) {
    std::vector<Token> tokens = parser.scan(record->message);
    if (tokens.empty()) continue;
    if (auto result = parser.match_tokens(service, tokens)) {
      ++match_counts[result->pattern->id()];
      ++outcome.report.matched_existing;
      continue;
    }
    ++outcome.report.analyzed;
    const std::size_t partition =
        opts_.partition_by_length ? tokens.size() : 0;
    auto [it, inserted] = tries.try_emplace(partition, opts_.analyzer);
    it->second.insert(tokens, record->message);
  }

  for (auto& [length, trie] : tries) {
    std::vector<Pattern> patterns = trie.analyze(service);
    for (Pattern& p : patterns) {
      p.stats.first_seen = opts_.now_unix;
      p.stats.last_matched = opts_.now_unix;
      if (p.stats.match_count < opts_.save_threshold) {
        ++outcome.report.below_threshold;
        continue;
      }
      ++outcome.report.new_patterns;
      outcome.new_patterns.push_back(std::move(p));
    }
  }
  outcome.match_updates.assign(match_counts.begin(), match_counts.end());
  return outcome;
}

BatchReport Engine::analyze_by_service(const std::vector<LogRecord>& batch) {
  // First partitioning: group records by service, preserving stream order
  // inside each group.
  std::map<std::string, std::vector<const LogRecord*>> by_service;
  for (const LogRecord& r : batch) {
    by_service[r.service].push_back(&r);
  }

  std::vector<const std::string*> service_names;
  service_names.reserve(by_service.size());
  for (const auto& [svc, recs] : by_service) service_names.push_back(&svc);

  std::vector<ServiceOutcome> outcomes(service_names.size());
  if (opts_.threads > 1 && service_names.size() > 1) {
    util::ThreadPool pool(std::min(opts_.threads, service_names.size()));
    pool.parallel_for(service_names.size(), [&](std::size_t i) {
      outcomes[i] =
          process_service(*service_names[i], by_service[*service_names[i]]);
    });
  } else {
    for (std::size_t i = 0; i < service_names.size(); ++i) {
      outcomes[i] =
          process_service(*service_names[i], by_service[*service_names[i]]);
    }
  }

  // Apply results in service order (outcomes are already sorted because
  // by_service is an ordered map) so runs are deterministic.
  BatchReport total;
  for (ServiceOutcome& outcome : outcomes) {
    for (const auto& [id, count] : outcome.match_updates) {
      repo_->record_match(id, count, opts_.now_unix);
    }
    for (const Pattern& p : outcome.new_patterns) {
      repo_->upsert_pattern(p);
    }
    total += outcome.report;
  }
  return total;
}

BatchReport Engine::analyze_single_trie(const std::vector<LogRecord>& batch) {
  BatchReport report;
  report.records = batch.size();
  report.services = 1;

  Scanner scanner(opts_.scanner);
  AnalyzerTrie trie(opts_.analyzer);
  for (const LogRecord& r : batch) {
    std::vector<Token> tokens = scanner.scan(r.message);
    promote_special_tokens(tokens, opts_.special);
    if (tokens.empty()) continue;
    ++report.analyzed;
    trie.insert(tokens, r.message);
  }
  std::vector<Pattern> patterns = trie.analyze("*");
  for (Pattern& p : patterns) {
    p.stats.first_seen = opts_.now_unix;
    p.stats.last_matched = opts_.now_unix;
    if (p.stats.match_count < opts_.save_threshold) {
      ++report.below_threshold;
      continue;
    }
    ++report.new_patterns;
    repo_->upsert_pattern(p);
  }
  return report;
}

}  // namespace seqrtg::core
