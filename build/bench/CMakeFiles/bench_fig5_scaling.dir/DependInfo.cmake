
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_scaling.cpp" "bench/CMakeFiles/bench_fig5_scaling.dir/bench_fig5_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_scaling.dir/bench_fig5_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seqrtg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seqrtg_store.dir/DependInfo.cmake"
  "/root/repo/build/src/exporters/CMakeFiles/seqrtg_exporters.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/seqrtg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/seqrtg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/loggen/CMakeFiles/seqrtg_loggen.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/seqrtg_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seqrtg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
