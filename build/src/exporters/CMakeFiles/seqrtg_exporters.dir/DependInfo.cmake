
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exporters/exporter.cpp" "src/exporters/CMakeFiles/seqrtg_exporters.dir/exporter.cpp.o" "gcc" "src/exporters/CMakeFiles/seqrtg_exporters.dir/exporter.cpp.o.d"
  "/root/repo/src/exporters/patterndb_import.cpp" "src/exporters/CMakeFiles/seqrtg_exporters.dir/patterndb_import.cpp.o" "gcc" "src/exporters/CMakeFiles/seqrtg_exporters.dir/patterndb_import.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seqrtg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seqrtg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
