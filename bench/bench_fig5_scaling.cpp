// Fig. 5 reproduction: "Evolution of Sequence Analyze and Sequence-RTG
// AnalyzeByService processing time with data set size. The datasets
// contained an average of 241 unique services."
//
// The paper sweeps 0.5M - 13.25M entries on a 2016 laptop; this harness
// sweeps a laptop-scale range (50k - 3.25M, override with
// SEQRTG_FIG5_MAX_SIZE) with the same structure: a 241-service synthetic
// fleet, an empty pattern database ("so all records would be sent for
// analysis... we want to measure the maximum likely running time"). The
// claim under test is the *shape*: AnalyzeByService outperforms the seminal
// Analyze, whose single shared trie degrades as the data set grows. An
// extra column shows AnalyzeByService with a thread pool (the paper's
// horizontal-scaling argument applied in-process).
#include <cstdio>
#include <cstdlib>

#include "core/analyze_by_service.hpp"
#include "loggen/fleet.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

#include "bench_common.hpp"

using namespace seqrtg;

namespace {

double run_once(const std::vector<core::LogRecord>& batch, bool by_service,
                std::size_t threads) {
  core::InMemoryRepository repo;  // empty pattern database
  core::EngineOptions opts;
  opts.threads = threads;
  core::Engine engine(&repo, opts);
  util::Stopwatch timer;
  if (by_service) {
    engine.analyze_by_service(batch);
  } else {
    engine.analyze_single_trie(batch);
  }
  return timer.seconds();
}

}  // namespace

int main() {
  std::size_t max_size = 3250000;
  if (const char* env = std::getenv("SEQRTG_FIG5_MAX_SIZE")) {
    max_size = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const std::size_t sizes_all[] = {50000,  100000,  250000,
                                   500000, 1000000, 3250000};

  loggen::FleetOptions fleet_opts;
  fleet_opts.services = 241;  // the paper's average unique-service count
  fleet_opts.seed = util::kDefaultSeed;
  loggen::FleetGenerator fleet(fleet_opts);

  std::printf("Fig. 5 — Analyze vs AnalyzeByService processing time "
              "(241 services, empty pattern DB)\n");
  std::printf("%10s | %14s | %18s | %22s\n", "messages", "Analyze [s]",
              "AnalyzeByService [s]", "AnalyzeByService x4 [s]");
  for (int i = 0; i < 72; ++i) std::putchar('-');
  std::putchar('\n');

  std::vector<core::LogRecord> batch;
  for (const std::size_t size : sizes_all) {
    if (size > max_size) break;
    // Extend the stream instead of regenerating: each row is a prefix of
    // the next, exactly like growing a captured dataset.
    while (batch.size() < size) batch.push_back(fleet.next().record);

    const double t_abs = run_once(batch, /*by_service=*/true, 1);
    const double t_abs4 = run_once(batch, /*by_service=*/true, 4);
    const double t_single = run_once(batch, /*by_service=*/false, 1);
    std::printf("%10zu | %14.2f | %18.2f | %22.2f\n", size, t_single, t_abs,
                t_abs4);
  }
  std::printf(
      "\nExpected shape (paper): AnalyzeByService well below Analyze, with\n"
      "Analyze degrading sharply past a few million entries as its single\n"
      "shared trie outgrows the caches.\n");
  seqrtg::bench::write_bench_telemetry("fig5_scaling");
  return 0;
}
