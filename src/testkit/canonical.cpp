#include "testkit/canonical.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace seqrtg::testkit {

std::string canonical_patterns(core::PatternRepository& repo,
                               bool include_match_counts) {
  std::vector<std::string> services = repo.services();
  std::sort(services.begin(), services.end());

  std::ostringstream out;
  for (const std::string& service : services) {
    std::vector<core::Pattern> patterns = repo.load_service(service);
    std::sort(patterns.begin(), patterns.end(),
              [](const core::Pattern& a, const core::Pattern& b) {
                if (a.token_count() != b.token_count()) {
                  return a.token_count() < b.token_count();
                }
                return a.text() < b.text();
              });
    for (const core::Pattern& p : patterns) {
      out << service << "\t";
      if (include_match_counts) out << p.stats.match_count << "\t";
      out << p.token_count() << "\t" << p.text() << "\n";
    }
  }
  return out.str();
}

std::string canonical_patterns_merged(
    const std::vector<core::PatternRepository*>& repos,
    bool include_match_counts) {
  // service -> every pattern any shard holds for it. A correctly routed
  // cluster contributes each service from exactly one shard; keeping ALL
  // contributions (no dedup) is what makes a split service visible.
  std::map<std::string, std::vector<core::Pattern>> pooled;
  for (core::PatternRepository* repo : repos) {
    for (const std::string& service : repo->services()) {
      std::vector<core::Pattern> patterns = repo->load_service(service);
      auto& bucket = pooled[service];
      bucket.insert(bucket.end(), std::make_move_iterator(patterns.begin()),
                    std::make_move_iterator(patterns.end()));
    }
  }

  std::ostringstream out;
  for (auto& [service, patterns] : pooled) {
    std::sort(patterns.begin(), patterns.end(),
              [](const core::Pattern& a, const core::Pattern& b) {
                if (a.token_count() != b.token_count()) {
                  return a.token_count() < b.token_count();
                }
                return a.text() < b.text();
              });
    for (const core::Pattern& p : patterns) {
      out << service << "\t";
      if (include_match_counts) out << p.stats.match_count << "\t";
      out << p.token_count() << "\t" << p.text() << "\n";
    }
  }
  return out.str();
}

std::string first_diff(const std::string& a, const std::string& b) {
  const std::vector<std::string_view> la = util::split(a, '\n');
  const std::vector<std::string_view> lb = util::split(b, '\n');
  const std::size_t n = std::max(la.size(), lb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view va = i < la.size() ? la[i] : "<absent>";
    const std::string_view vb = i < lb.size() ? lb[i] : "<absent>";
    if (va != vb) {
      std::ostringstream out;
      out << "line " << (i + 1) << ":\n  left:  " << va
          << "\n  right: " << vb;
      return out.str();
    }
  }
  return "identical";
}

}  // namespace seqrtg::testkit
