// PatternStore: persistent pattern repository over the embedded database.
//
// Implements RTG extension #2: "Sequence-RTG stores the patterns in a SQL
// database in a one-to-many relationship with their related services. We
// also include up to three unique examples for each pattern which are used
// as test cases for the syslog-ng pattern database... We label each pattern
// with a unique ID ... a SHA1 hash of the concatenated text of the pattern
// and the service."
//
// Schema:
//   patterns(pid TEXT PRIMARY KEY, service TEXT, ptext TEXT, tokens TEXT,
//            token_count INTEGER, complexity REAL, match_count INTEGER,
//            first_seen INTEGER, last_matched INTEGER)
//   examples(pid TEXT, seq INTEGER, message TEXT)
// with secondary indexes on patterns(service) and examples(pid).
//
// `tokens` holds the exact token list as JSON so typed variables round-trip
// losslessly (the display text alone cannot distinguish a key-named
// %srcport% Integer from a generic String).
//
// Durability (see DESIGN.md §10): open() attaches the store to a directory
// holding `snapshot-<seq>.db` files plus a `wal.log`. Every acknowledged
// mutation is appended to the WAL (one CRC-framed record per commit group)
// and fsynced before the call returns; checkpoint() rotates a fresh
// snapshot in via write-to-temp + fsync + atomic rename, then truncates
// the log. Recovery loads the newest valid snapshot and replays the WAL
// tail, skipping records at or below the snapshot's sequence watermark and
// truncating at the first corrupt record.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/governor.hpp"
#include "core/pattern.hpp"
#include "core/repository.hpp"
#include "store/database.hpp"
#include "store/wal.hpp"

namespace seqrtg::store {

/// Serialises pattern tokens to the JSON wire form stored in `tokens`.
std::string pattern_tokens_to_json(
    const std::vector<core::PatternToken>& tokens);

/// Parses the JSON wire form; std::nullopt on malformed input.
std::optional<std::vector<core::PatternToken>> pattern_tokens_from_json(
    std::string_view json);

// Partition spill (resource governance, DESIGN.md §17):
//
// A spilled partition's rows live in a per-service `spill-<hash>.sp` file
// (write-to-temp + fsync + rename) instead of the in-memory database. Two
// WAL ops make residency transitions replayable AND replicable:
//
//   kOpSpill(service, rows)  — erase the partition's rows, (re)write its
//                              spill file from the embedded rows
//   kOpReload(service, rows) — insert the embedded rows verbatim, delete
//                              the spill file
//
// Both embed the full row set, so replay is a pure function of the log
// (it never needs to read a spill file, whose content at replay time may
// postdate the record) and a standby receiving shipped groups maintains
// its own spill files. The spill file itself exists for exactly one
// reason: checkpoint() truncates the WAL, and a partition spilled across
// a checkpoint has its only durable copy in the file. open() reconciles:
// a spill file whose service has resident rows after replay is a stale
// leftover of an interrupted spill and is deleted; the remainder define
// the spilled set.
//
// Ordering contract: spill/reload commit groups append immediately (never
// buffered into a batch scope), and a service with ops buffered in ANY
// open batch scope refuses to spill — together these keep WAL order
// identical to in-memory mutation order per service, which is what makes
// replay faithful.
class PatternStore final : public core::PatternRepository,
                           public core::SpillTarget {
 public:
  /// Creates the schema in a fresh in-memory database.
  PatternStore();

  // PatternRepository:
  std::vector<core::Pattern> load_service(std::string_view service) override;
  std::vector<std::string> services() override;
  void upsert_pattern(const core::Pattern& p) override;
  void record_match(const std::string& id, std::uint64_t count,
                    std::int64_t when) override;
  bool delete_pattern(const std::string& id) override;
  std::optional<core::Pattern> find(const std::string& id) override;
  std::size_t pattern_count() override;

  /// Batch hooks (PatternRepository): between begin_batch() and
  /// commit_batch() the WAL records of every mutation are buffered and
  /// appended+fsynced as ONE commit group, so the durable store either
  /// holds the whole batch or none of it. abort_batch() discards the
  /// buffered records — the in-memory database keeps any ops already
  /// applied, so an aborted batch leaves memory ahead of the log; reopen
  /// the directory to fall back to the last committed state.
  ///
  /// Batch scopes are per-thread: each serve lane (or any other concurrent
  /// caller) buffers into its own group keyed by thread id, so overlapping
  /// batches from different threads commit as independent atomic groups.
  /// Mutations from a thread with no open scope append immediately.
  void begin_batch() override;
  void commit_batch() override;
  void abort_batch() override;

  /// All patterns (optionally filtered), ordered by match count descending —
  /// the review/export ordering ("select only the strongest patterns").
  struct ExportFilter {
    std::uint64_t min_match_count = 0;
    /// Patterns at or above this complexity are excluded (1.01 = keep all).
    double max_complexity = 1.01;
    std::string service;  // empty = all services
  };
  std::vector<core::Pattern> export_patterns(const ExportFilter& filter);

  /// Persists/restores the whole store as a single snapshot file (no
  /// journal — the legacy `--db` path). Prefer open() for crash safety.
  bool save(const std::string& path);
  bool load(const std::string& path);

  /// Attaches the store to a durable directory: loads the newest valid
  /// snapshot, replays the WAL tail (truncating at the first corrupt
  /// record), and keeps the log open for appending. Creates the directory
  /// when missing. Returns false on unrecoverable I/O errors; the store
  /// is left empty and non-durable in that case.
  bool open(const std::string& dir);

  /// True when open() attached a directory and the WAL is live.
  bool durable() const { return wal_.is_open(); }

  /// Rotates a snapshot: write-to-temp + fsync + atomic rename + directory
  /// fsync, then truncates the WAL. Keeps the previous snapshot as a
  /// fallback and deletes older generations. No-op (false) when not
  /// durable.
  bool checkpoint();

  /// Point-in-time durability facts for `seqrtg stats`.
  struct DurabilityStats {
    bool durable = false;
    std::string dir;
    /// Sequence of the last committed WAL record (0 = none yet).
    std::uint64_t last_seq = 0;
    /// Watermark of the snapshot recovery loaded / checkpoint wrote.
    std::uint64_t snapshot_seq = 0;
    /// Records currently in the log (appended or replayed since the last
    /// checkpoint truncated it).
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    /// Unix mtimes (0 when the file does not exist).
    std::int64_t snapshot_unix = 0;
    std::int64_t wal_unix = 0;
  };
  DurabilityStats durability_stats();

  /// Replication tap: invoked with (seq, ops) after every commit group is
  /// appended AND fsynced (under the store mutex, so groups arrive in
  /// exact WAL order). This is the shard node's WAL-shipping hook — a
  /// group handed to the sink is by construction locally durable, so the
  /// standby can only ever trail the primary, never lead it. Keep the
  /// sink fast or accept that it gates commit latency; pass nullptr to
  /// detach.
  void set_commit_sink(
      std::function<void(std::uint64_t, std::string_view)> sink) {
    std::lock_guard lock(mutex_);
    commit_sink_ = std::move(sink);
  }

  /// Standby-side ingestion of a shipped commit group: applies `ops` and
  /// appends them to the local WAL under the SAME sequence number the
  /// primary assigned, so a promoted standby's log is byte-compatible
  /// with the primary's history. Groups at or below the local watermark
  /// (already applied, or covered by a snapshot) are idempotently
  /// ignored. Returns false when the store is not durable or the local
  /// append could not honour `seq`.
  bool apply_replicated_group(std::uint64_t seq, std::string_view ops);

  /// Directory bound by open(); empty when not durable.
  const std::string& directory() const { return dir_; }

  /// Testkit simulation layer: forwards a scripted torn-tail fault to the
  /// underlying WAL (see Wal::set_fault_hook). The hook fires on the next
  /// matching commit group and wedges the log, so recovery tests can
  /// script "the process died while writing group N" without killing the
  /// process. No effect when the store is not durable.
  void set_wal_fault_hook(std::function<std::int64_t(std::uint64_t)> hook) {
    std::lock_guard lock(mutex_);
    wal_.set_fault_hook(std::move(hook));
  }

  /// Testkit: true once a scripted WAL fault has fired and wedged the log
  /// (read after the writers have quiesced).
  bool wal_wedged() const { return wal_.wedged(); }

  /// Direct access for ad-hoc SQL (tests, tooling).
  Database& database() { return db_; }

  /// Governance wiring: registers this store as the governor's spill
  /// target, seeds the accountant's ledger and the governor's LRU with
  /// the current resident partitions, and from then on reports every
  /// partition's resident bytes through the accountant. nullptr detaches.
  void attach_governor(core::Governor* governor);

  /// core::SpillTarget — durably persists `service`'s partition to its
  /// spill file + a kOpSpill commit group, then frees the in-RAM rows.
  /// Refuses (false) when the store is not durable, the WAL is wedged,
  /// the service is unknown/already spilled/pinned, or a batch scope has
  /// buffered ops for it.
  bool spill_partition(const std::string& service) override;

  /// True while `service`'s partition lives in its spill file. Reads
  /// through load_service/upsert reload it transparently; find() and
  /// record_match() see only resident rows (their callers load the
  /// service first — the engine pins it resident for the duration).
  bool is_spilled(std::string_view service);
  std::vector<std::string> spilled_services();

  /// Authoritative recount of every resident partition's bytes, computed
  /// from the rows themselves — the governance oracle audits the
  /// accountant's ledger against this.
  std::map<std::string, std::size_t> recount_partition_bytes();

 private:
  /// std::nullopt when the row is unrecoverable (both the JSON token list
  /// and the display-text fallback fail to parse) — counted in
  /// seqrtg_store_corrupt_rows_total and skipped by every reader.
  std::optional<core::Pattern> row_to_pattern(const Row& row);
  std::vector<std::string> load_examples(const std::string& pid);
  void create_schema();

  // Unlocked mutation bodies shared by the public entry points and WAL
  // replay (replay must not re-append). record_match/delete return the
  // owning service (nullopt when no row matched) so the public entry
  // points can maintain the partition ledger and batch-scope bookkeeping.
  void apply_upsert(const core::Pattern& p);
  std::optional<std::string> apply_record_match(const std::string& id,
                                                std::uint64_t count,
                                                std::int64_t when);
  std::optional<std::string> apply_delete(const std::string& id);
  /// Replay bodies of the residency ops (also used by replicated apply).
  void apply_spill(std::string_view service, std::uint32_t n_patterns,
                   std::string_view rows_blob);
  void apply_reload(std::string_view service, std::string_view rows_blob);

  // Spill machinery (all require mutex_ held).
  std::string spill_file_path(std::string_view service) const;
  bool write_spill_file_locked(std::string_view service,
                               std::uint32_t n_patterns,
                               std::string_view rows_blob, bool fsync);
  bool ensure_resident_locked(std::string_view service);
  void erase_partition_locked(std::string_view service);
  std::vector<core::Pattern> partition_rows_locked(std::string_view service);
  std::size_t partition_bytes_locked(std::string_view service);
  /// Recomputes `service`'s ledger entry (and LRU presence) after a
  /// mutation. No-op without an attached governor.
  void refresh_partition_locked(std::string_view service);
  /// open()-time reconciliation: stale spill files (service resident) are
  /// deleted, the rest define the spilled set.
  void reconcile_spill_files_locked();
  /// Appends `ops` (or buffers them into the calling thread's open batch
  /// scope) and fsyncs.
  void log_ops(std::string ops);
  /// Records `service` into the calling thread's batch-scope touched set
  /// (spill exemption); no-op when the thread has no open scope.
  void note_batch_service_locked(std::string_view service);
  /// Appends one commit group to the WAL unconditionally and fsyncs.
  void append_group(std::string ops);
  /// Decodes and applies one replayed commit group.
  void replay_ops(std::string_view ops);

  std::mutex mutex_;
  Database db_;
  Wal wal_;
  std::string dir_;
  std::uint64_t snapshot_seq_ = 0;
  std::function<void(std::uint64_t, std::string_view)> commit_sink_;
  /// Open batch scopes, one buffered commit group per thread (guarded by
  /// mutex_ like everything else).
  std::map<std::thread::id, std::string> batch_ops_;
  /// Services with ops buffered in each open batch scope — those are
  /// spill-exempt until the scope closes (see the ordering contract in
  /// the class comment).
  std::map<std::thread::id, std::set<std::string, std::less<>>>
      batch_services_;

  core::Governor* governor_ = nullptr;
  struct SpilledInfo {
    std::size_t patterns = 0;
  };
  std::map<std::string, SpilledInfo, std::less<>> spilled_;
};

}  // namespace seqrtg::store
