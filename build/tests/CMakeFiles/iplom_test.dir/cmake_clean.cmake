file(REMOVE_RECURSE
  "CMakeFiles/iplom_test.dir/baselines/iplom_test.cpp.o"
  "CMakeFiles/iplom_test.dir/baselines/iplom_test.cpp.o.d"
  "iplom_test"
  "iplom_test.pdb"
  "iplom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iplom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
