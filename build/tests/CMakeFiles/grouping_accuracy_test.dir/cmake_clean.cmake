file(REMOVE_RECURSE
  "CMakeFiles/grouping_accuracy_test.dir/eval/grouping_accuracy_test.cpp.o"
  "CMakeFiles/grouping_accuracy_test.dir/eval/grouping_accuracy_test.cpp.o.d"
  "grouping_accuracy_test"
  "grouping_accuracy_test.pdb"
  "grouping_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
