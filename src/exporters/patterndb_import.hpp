// patterndb XML import: the other half of the review loop.
//
// Administrators export candidate patterns, edit the XML ("modify them
// slightly if need be", paper §IV) and promote the file into the syslog-ng
// pattern database. This importer reads such a file back into Pattern
// objects so the promoted database can seed the parser, be re-validated,
// or be merged into the store — completing the round trip with
// exporters::export_patterns(PatterndbXml).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pattern.hpp"

namespace seqrtg::exporters {

struct ImportResult {
  std::vector<core::Pattern> patterns;
  /// Non-fatal oddities (unknown parsers mapped to %string%, rules without
  /// patterns, ...).
  std::vector<std::string> warnings;
  /// Fatal problem (malformed XML); patterns is empty.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Parses a patterndb v4 document produced by export_patterns (or edited
/// by hand). Rule ruleset names become services; test_message elements
/// become examples; seqrtg.* values restore the statistics.
ImportResult import_patterndb_xml(std::string_view xml);

/// Parses one patterndb pattern string ("login from @IPv4:srcip@ port
/// @NUMBER:port@") into pattern tokens. Returns std::nullopt on unbalanced
/// '@' delimiters. Unknown parser names map to String variables.
std::optional<std::vector<core::PatternToken>> parse_patterndb_pattern(
    std::string_view text);

}  // namespace seqrtg::exporters
