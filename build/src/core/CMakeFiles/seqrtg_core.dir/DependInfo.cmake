
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyze_by_service.cpp" "src/core/CMakeFiles/seqrtg_core.dir/analyze_by_service.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/analyze_by_service.cpp.o.d"
  "/root/repo/src/core/fsm_datetime.cpp" "src/core/CMakeFiles/seqrtg_core.dir/fsm_datetime.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/fsm_datetime.cpp.o.d"
  "/root/repo/src/core/fsm_general.cpp" "src/core/CMakeFiles/seqrtg_core.dir/fsm_general.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/fsm_general.cpp.o.d"
  "/root/repo/src/core/fsm_hex.cpp" "src/core/CMakeFiles/seqrtg_core.dir/fsm_hex.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/fsm_hex.cpp.o.d"
  "/root/repo/src/core/ingest.cpp" "src/core/CMakeFiles/seqrtg_core.dir/ingest.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/ingest.cpp.o.d"
  "/root/repo/src/core/parser.cpp" "src/core/CMakeFiles/seqrtg_core.dir/parser.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/parser.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/seqrtg_core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "src/core/CMakeFiles/seqrtg_core.dir/repository.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/repository.cpp.o.d"
  "/root/repo/src/core/scanner.cpp" "src/core/CMakeFiles/seqrtg_core.dir/scanner.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/scanner.cpp.o.d"
  "/root/repo/src/core/special_tokens.cpp" "src/core/CMakeFiles/seqrtg_core.dir/special_tokens.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/special_tokens.cpp.o.d"
  "/root/repo/src/core/token.cpp" "src/core/CMakeFiles/seqrtg_core.dir/token.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/token.cpp.o.d"
  "/root/repo/src/core/trie.cpp" "src/core/CMakeFiles/seqrtg_core.dir/trie.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/trie.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/seqrtg_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/seqrtg_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seqrtg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
