// Fleet stream generator: a synthetic multi-service data-centre log stream.
//
// Substitutes for the CC-IN2P3 production stream used in the paper's
// performance experiments: Fig. 5 runs Analyze / AnalyzeByService over
// datasets of increasing size that "contained an average of 241 unique
// services", and Fig. 7 consumes a continuous stream of 70-100 M messages
// per day. Each synthetic service gets its own vocabulary, header layout
// and event-template bank (5-40 events), so the stream has the same
// structure the two-stage partitioning exploits: patterns never cross
// services, and event frequencies are Zipf-skewed within a service, as is
// the per-service share of the stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ingest.hpp"
#include "loggen/corpus.hpp"
#include "util/rng.hpp"

namespace seqrtg::loggen {

struct FleetOptions {
  std::size_t services = 241;
  std::size_t min_events_per_service = 5;
  std::size_t max_events_per_service = 40;
  /// Zipf exponent of the per-service traffic share.
  double service_zipf = 1.0;
  /// Zipf exponent of event frequencies within a service.
  double event_zipf = 1.1;
  /// Fraction of one-off messages (unique, never-repeating text). Real
  /// streams carry a long tail of such messages; they are what keeps the
  /// paper's Fig. 7 floor around 15% unmatched rather than zero.
  double noise_fraction = 0.0;
  std::uint64_t seed = util::kDefaultSeed;
};

/// event_idx value marking a one-off noise record.
inline constexpr std::size_t kNoiseEvent = static_cast<std::size_t>(-1);

/// A generated record plus its ground-truth coordinates.
struct FleetRecord {
  core::LogRecord record;
  std::size_t service_idx;
  std::size_t event_idx;
};

class FleetGenerator {
 public:
  explicit FleetGenerator(FleetOptions opts);

  /// Next record of the stream (deterministic in the seed).
  FleetRecord next();

  /// Convenience: `n` plain records (labels dropped).
  std::vector<core::LogRecord> take(std::size_t n);

  std::size_t service_count() const { return services_.size(); }
  std::size_t event_count(std::size_t service_idx) const {
    return services_[service_idx].events.size();
  }
  const std::string& service_name(std::size_t service_idx) const {
    return services_[service_idx].name;
  }
  /// Total distinct events across all services (upper bound on patterns).
  std::size_t total_events() const;

 private:
  struct Service {
    std::string name;
    std::string header;
    std::vector<std::string> events;
    util::ZipfSampler event_sampler;
  };

  static Service make_service(std::size_t idx, util::Rng rng,
                              const FleetOptions& opts);

  FleetOptions opts_;
  std::vector<Service> services_;
  util::ZipfSampler service_sampler_;
  GenContext ctx_;
};

}  // namespace seqrtg::loggen
