#include "core/scanner.hpp"

#include <array>
#include <optional>

#include "core/fsm_general.hpp"
#include "core/fsm_hex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/simd_classify.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace seqrtg::core {

namespace {

using util::byte_class;
using util::is_space;
using util::kByteAlpha;
using util::kByteBreakPunct;
using util::kByteDigit;
using util::kByteHexDigit;
using util::kByteLineBreak;
using util::kByteSpace;
using util::kByteTrailPunct;

struct ScannerMetrics {
  obs::Counter& messages;
  obs::Counter& tokens;
  obs::Counter& truncated;
  obs::Histogram& scan_seconds;
};

ScannerMetrics& scanner_metrics() {
  auto& reg = obs::default_registry();
  static ScannerMetrics m{
      reg.counter("seqrtg_scanner_messages_total",
                  "Messages tokenised by the scanner"),
      reg.counter("seqrtg_scanner_tokens_total",
                  "Tokens emitted by the scanner"),
      reg.counter("seqrtg_scanner_truncated_total",
                  "Scans truncated by a line break or the token cap"),
      reg.histogram("seqrtg_scanner_scan_seconds",
                    "Single-message scan latency, sampled 1 in 64")};
  return m;
}

/// Which classifier kernel served the scan (scalar / sse / avx2). The level
/// is fixed per process outside tests, so this mostly confirms at a glance
/// that production hosts actually run the vector path.
obs::Counter& scans_by_path(util::SimdLevel level) {
  auto& reg = obs::default_registry();
  static std::array<obs::Counter*, 3> paths = [&reg] {
    std::array<obs::Counter*, 3> p{};
    for (std::uint8_t i = 0; i < 3; ++i) {
      p[i] = &reg.counter(
          "seqrtg_scanner_scans_by_path_total",
          "Scans served per SIMD dispatch path",
          {{"path", util::simd_level_name(static_cast<util::SimdLevel>(i))}});
    }
    return p;
  }();
  return *paths[static_cast<std::uint8_t>(level)];
}

/// Per-message latency is sampled so the hot path pays the two clock reads
/// only once every 64 scans.
constexpr std::uint64_t kScanSampleMask = 63;

}  // namespace

void Scanner::scan_into(std::string_view message, TokenBuffer& out) const {
  const bool telemetry = obs::telemetry_enabled();
  std::optional<util::Stopwatch> watch;
  if (telemetry) {
    thread_local std::uint64_t sample_tick = 0;
    if ((sample_tick++ & kScanSampleMask) == 0) watch.emplace();
  }
  obs::TraceSpan span(obs::TraceSpan::Sampled{}, obs::TraceCat::kScanner,
                      "scan");
  out.clear();

  // One vectorised pass classifies every byte into the boundary bitmap; the
  // token loop below never re-asks "is this a delimiter?" per character.
  const util::SimdLevel simd = util::simd_level();
  thread_local util::TokenBoundaryMap boundary;
  boundary.build(message, simd);

  std::size_t pos = 0;
  bool space_pending = false;
  std::string_view pending_key;  // set after '=', consumed by next value
  bool truncated = false;

  const auto push = [&](TokenType type, std::string_view value) {
    Token t;
    t.type = type;
    t.value = value;
    t.is_space_before = space_pending;
    space_pending = false;
    // key=value semantic naming: attach the key to the first non-quote
    // token following '='.
    if (!pending_key.empty() && type != TokenType::Literal) {
      t.key = pending_key;
      pending_key = {};
    } else if (!pending_key.empty() && type == TokenType::Literal &&
               t.value != "\"" && t.value != "'") {
      t.key = pending_key;
      pending_key = {};
    }
    out.push(t);
  };

  while (pos < message.size()) {
    const char c = message[pos];
    const std::uint8_t cls = byte_class(c);
    if (cls & kByteLineBreak) {
      // Multi-line message: process only the first line (extension #6).
      truncated = util::trim(message.substr(pos)).size() > 0;
      break;
    }
    if (cls & kByteSpace) {
      space_pending = true;
      ++pos;
      continue;
    }
    if (opts_.max_tokens != 0 && out.size() >= opts_.max_tokens) {
      truncated = true;
      break;
    }

    const std::string_view rest = message.substr(pos);

    if (cls & kByteBreakPunct) {
      // Pre-processed wildcard from the logparser benchmarks.
      if (c == '<' && opts_.detect_preprocessed_wildcard &&
          util::starts_with(rest, "<*>")) {
        push(TokenType::String, rest.substr(0, 3));
        pos += 3;
        continue;
      }
      // ':' is the one break character that can open a larger token: a
      // "::"-compressed IPv6 address ("::1", "::ffff:10.0.0.1"). The other
      // FSMs all require a hex digit / letter / digit first byte.
      if (c == ':') {
        if (const std::size_t len = match_ipv6(rest); len > 0) {
          push(TokenType::IPv6, rest.substr(0, len));
          pos += len;
          continue;
        }
      }
      const bool was_equals = (c == '=');
      // Record the key before push() clears context: the previous token
      // must be a literal word for "key=" naming to apply.
      std::string_view key;
      if (was_equals && opts_.split_key_value && !out.empty() &&
          out.back().type == TokenType::Literal &&
          util::has_alpha(out.back().value) &&
          out.back().value.find(' ') == std::string_view::npos) {
        key = out.back().value;
      }
      push(TokenType::Literal, rest.substr(0, 1));
      if (!key.empty()) pending_key = key;
      ++pos;
      continue;
    }

    // The first delimiter after this token start doubles as a structural
    // gate for the colon-shaped FSMs below and as the chunk end afterwards.
    // ':' is break punctuation, so an IPv6 address (first hex group of at
    // most 4 digits) and a URL (alpha-only scheme of at most 5 letters)
    // must both put a ':' at the first delimiter — tokens that do not are
    // rejected without running those automata.
    const std::size_t end = boundary.next_delim(pos + 1);
    const bool colon_delim = end < message.size() && message[end] == ':';

    // FSM order matters: hex-family first (colon-separated groups would
    // confuse the time FSM), then datetime, then the general shapes. Each
    // probe is gated on the first byte's class: a MAC or IPv6 address must
    // open with a hex digit, a timestamp with a digit or letter, a URL
    // scheme with a letter — anything else skips straight to chunking.
    if (cls & kByteHexDigit) {
      // match_mac self-gates in two compares (length, then text[2] must be
      // ':' or '-' — the '-' variant never reaches a delimiter), so only
      // the IPv6 automaton needs the colon gate.
      if (const std::size_t len = match_mac(rest); len > 0) {
        push(TokenType::Mac, rest.substr(0, len));
        pos += len;
        continue;
      }
      if (colon_delim && end - pos <= 4) {
        if (const std::size_t len = match_ipv6(rest); len > 0) {
          push(TokenType::IPv6, rest.substr(0, len));
          pos += len;
          continue;
        }
      }
    }
    if (cls & (kByteDigit | kByteAlpha)) {
      if (const std::size_t len = match_datetime(rest, opts_.datetime);
          len > 0) {
        push(TokenType::Time, rest.substr(0, len));
        pos += len;
        continue;
      }
    }
    // URLs span break punctuation (':', '/') and must be matched before
    // chunk extraction.
    if ((cls & kByteAlpha) && colon_delim && end - pos <= 5 &&
        end + 2 < message.size() && message[end + 1] == '/' &&
        message[end + 2] == '/') {
      if (const std::size_t len = match_url(rest); len > 0) {
        push(TokenType::Url, rest.substr(0, len));
        pos += len;
        continue;
      }
    }

    // General chunk: up to whitespace or breaking punctuation — the next
    // set bit in the boundary map. The chunk is classified as a whole —
    // prefix matches do not count, so a UUID never decays into a hex run
    // plus a literal tail (which would make token counts value-dependent
    // and split patterns).
    std::size_t chunk_end = end;
    // Peel trailing sentence punctuation (keep at least one character).
    while (chunk_end > pos + 1 &&
           (byte_class(message[chunk_end - 1]) & kByteTrailPunct)) {
      --chunk_end;
    }
    const std::string_view chunk = message.substr(pos, chunk_end - pos);
    // The digit bitmap (built in the same SIMD pass as the boundary map)
    // classifies the two common cases — a pure word and a pure number —
    // with masked word tests instead of a per-byte loop. Valid because ':'
    // is a break character, so a chunk can never contain a URL scheme
    // ("://"), and a bare hex run must mix digits with letters.
    if (!boundary.any_digit(pos, chunk_end)) {
      push(TokenType::Literal, chunk);
    } else if (boundary.all_digits(pos, chunk_end)) {
      push(TokenType::Integer, chunk);
    } else if (match_hex(chunk) == chunk.size()) {
      push(TokenType::Hex, chunk);
    } else {
      push(classify_general(chunk), chunk);
    }
    pos = chunk_end;
    while (pos < end) {
      if (opts_.max_tokens != 0 && out.size() >= opts_.max_tokens) {
        truncated = true;
        break;
      }
      push(TokenType::Literal, message.substr(pos, 1));
      ++pos;
    }
    if (truncated) break;
  }

  if (truncated) {
    Token t;
    t.type = TokenType::Rest;
    t.value = {};
    // The ignored remainder is always separated from the kept prefix (a
    // line break or inter-token whitespace), so the marker renders with a
    // space: "error trace follows %rest%".
    t.is_space_before = !out.empty();
    out.push(t);
  }
  if (span.active()) {
    span.set_args(static_cast<std::int64_t>(message.size()),
                  static_cast<std::int64_t>(out.size()));
  }
  if (telemetry) {
    ScannerMetrics& m = scanner_metrics();
    m.messages.inc();
    m.tokens.inc(out.size());
    if (truncated) m.truncated.inc();
    scans_by_path(simd).inc();
    if (watch) m.scan_seconds.observe(watch->seconds());
  }
}

std::vector<Token> Scanner::scan(std::string_view message) const {
  // The thread-local buffer keeps scan() allocation-stable: repeated calls
  // grow it to the high-water token count once, then only the returned
  // vector allocates. (A fresh per-call buffer used to re-grow past its
  // initial reserve on every >24-token message, which made the allocation
  // counters in bench_scanner drift with the benchmark's iteration count.)
  thread_local TokenBuffer buf;
  scan_into(message, buf);
  return buf.tokens();
}

}  // namespace seqrtg::core
