// Sharded cluster node: a Server wrapped with the binary cluster
// transport and WAL-shipping replication.
//
// Topology (`seqrtg route` + N × `seqrtg serve --cluster-port`):
//
//   router ──kRecord──► shard node 0 ──kWalGroup──► standby 0
//          ──kRecord──► shard node 1 ──kWalGroup──► standby 1
//                           ...
//
// Each node owns the consistent-hash range the router assigns it and runs
// the ordinary serve pipeline underneath; decoded kRecord frames enter
// through Server::ingest_record, so binary and JSON ingest share one
// accounting path. Replication is WAL shipping: the node installs a
// PatternStore commit sink and forwards every commit group — AFTER the
// local append+fsync, in exact WAL order — to its hot standby, which
// applies the group under the primary's sequence number
// (PatternStore::apply_replicated_group). A group the standby holds is by
// construction durable on the primary, so the standby only ever trails,
// and a SIGKILLed primary loses nothing that was committed: takeover is
// "point the router at the standby".
//
// Shipping has no resync protocol in v1: a failed send (or a scripted
// ship fault) wedges replication permanently and every subsequent group is
// counted lost — the same latched-failure accounting the WAL's torn-tail
// faults use, so tests can assert exact loss numbers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cluster_proto.hpp"
#include "serve/server.hpp"

namespace seqrtg::serve {

/// Blocking client side of one cluster connection (router -> node, or
/// node -> standby). Single-threaded use; callers serialise sends.
class ClusterClient {
 public:
  ClusterClient() = default;
  ~ClusterClient() { close(); }
  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Connects to 127.0.0.1:`port` and sends the stream header plus a
  /// kHello identifying this peer. False on any failure (fd closed).
  bool connect(int port, std::uint8_t role, const std::string& node_id);

  /// Writes the whole buffer (MSG_NOSIGNAL, partial-write loop). False on
  /// error; the connection is closed and stays closed.
  bool send(std::string_view bytes);

  bool connected() const { return fd_ >= 0; }

  /// True when the peer hung up or reset. Cluster peers never write back
  /// on these connections, so a readable socket can only mean EOF or an
  /// error — a cheap liveness probe the router runs before each send.
  bool peer_dead();

  void close();

 private:
  int fd_ = -1;
};

struct ClusterNodeOptions {
  ServeOptions serve;
  /// Cluster transport listener on 127.0.0.1: 0 = kernel-assigned,
  /// >0 = fixed (always on — a cluster node exists to speak it).
  int cluster_port = 0;
  /// Standby's cluster port to ship committed WAL groups to; -1 = no
  /// replication.
  int ship_to = -1;
  std::string node_id = "node";
  /// Scripted replication fault (testkit): consulted once per commit
  /// group with a 0-based group index; returning true wedges shipping
  /// from that group on (it and everything after it is counted lost).
  std::function<bool(std::uint64_t)> ship_fault;
};

/// Point-in-time counters (all monotonic; read via stats()).
struct ClusterNodeStats {
  /// kRecord frames decoded and handed to the serve pipeline.
  std::uint64_t records = 0;
  /// kWalGroup frames applied to the local store (standby role).
  std::uint64_t groups_applied = 0;
  /// Highest replicated sequence applied so far.
  std::uint64_t last_applied_seq = 0;
  /// Connections dropped for a framing violation (counted once each).
  std::uint64_t malformed_streams = 0;
  /// Commit groups shipped to the standby / lost to a wedged link.
  std::uint64_t groups_shipped = 0;
  std::uint64_t groups_lost = 0;
  bool ship_wedged = false;
};

class ClusterNode {
 public:
  /// `store` must outlive the node (same contract as Server).
  ClusterNode(store::PatternStore* store, ClusterNodeOptions opts);
  ~ClusterNode();
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  bool start(std::string* error = nullptr);

  /// Drains: cluster listener first, then the inner server (its final
  /// flushes still ship through the sink), then the shipper link.
  ServeReport stop();

  int cluster_port() const { return cluster_port_; }
  Server& server() { return server_; }

  ClusterNodeStats stats() const;

  /// Blocks until `pred()` holds or `timeout` elapses; woken after every
  /// stats change AND every server progress change, so tests can wait on
  /// predicates spanning both ("standby applied group N and processed M").
  bool wait_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(10000)) const;

 private:
  void accept_loop();
  void connection_loop(int fd);
  void ship_group(std::uint64_t seq, std::string_view ops);
  void count_malformed(int fd, const std::string& error);
  void notify() const;

  store::PatternStore* store_;
  ClusterNodeOptions opts_;
  Server server_;

  int listen_fd_ = -1;
  int cluster_port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  ClusterClient shipper_;
  std::mutex ship_mutex_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  ServeReport final_report_;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> groups_applied_{0};
  std::atomic<std::uint64_t> last_applied_seq_{0};
  std::atomic<std::uint64_t> malformed_streams_{0};
  std::atomic<std::uint64_t> groups_shipped_{0};
  std::atomic<std::uint64_t> groups_lost_{0};
  std::atomic<std::uint64_t> ship_index_{0};
  std::atomic<bool> ship_wedged_{false};
  mutable std::mutex progress_mutex_;
  mutable std::condition_variable progress_cv_;
};

}  // namespace seqrtg::serve
