#include "store/pattern_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "obs/metrics.hpp"

namespace seqrtg::store {
namespace {

core::Pattern make_pattern(std::string service, std::string text_word,
                           std::uint64_t count = 1) {
  core::Pattern p;
  p.service = std::move(service);
  core::PatternToken c;
  c.is_variable = false;
  c.text = std::move(text_word);
  p.tokens.push_back(c);
  core::PatternToken v;
  v.is_variable = true;
  v.var_type = core::TokenType::Integer;
  v.name = "n";
  v.is_space_before = true;
  p.tokens.push_back(v);
  p.stats.match_count = count;
  p.stats.first_seen = 100;
  p.stats.last_matched = 100;
  return p;
}

TEST(PatternTokensJson, RoundTrip) {
  const core::Pattern p = make_pattern("svc", "event");
  const std::string json = pattern_tokens_to_json(p.tokens);
  const auto back = pattern_tokens_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p.tokens);
}

TEST(PatternTokensJson, RejectsMalformed) {
  EXPECT_FALSE(pattern_tokens_from_json("not json").has_value());
  EXPECT_FALSE(pattern_tokens_from_json("{}").has_value());
  EXPECT_FALSE(pattern_tokens_from_json("[{\"v\":1}]").has_value());
}

TEST(PatternStore, UpsertFindRoundTrip) {
  PatternStore store;
  const core::Pattern p = make_pattern("sshd", "login", 3);
  store.upsert_pattern(p);
  EXPECT_EQ(store.pattern_count(), 1u);
  const auto found = store.find(p.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->text(), "login %n%");
  EXPECT_EQ(found->service, "sshd");
  EXPECT_EQ(found->stats.match_count, 3u);
  EXPECT_EQ(found->tokens, p.tokens) << "typed tokens must round-trip";
}

TEST(PatternStore, UpsertMergesExisting) {
  PatternStore store;
  core::Pattern p = make_pattern("sshd", "login", 3);
  p.examples = {"login 1"};
  store.upsert_pattern(p);
  core::Pattern q = make_pattern("sshd", "login", 4);
  q.examples = {"login 1", "login 2"};
  q.stats.last_matched = 500;
  store.upsert_pattern(q);
  EXPECT_EQ(store.pattern_count(), 1u);
  const auto found = store.find(p.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->stats.match_count, 7u);
  EXPECT_EQ(found->stats.last_matched, 500);
  ASSERT_EQ(found->examples.size(), 2u);
  EXPECT_EQ(found->examples[1], "login 2");
}

TEST(PatternStore, ExamplesCappedAtThree) {
  PatternStore store;
  core::Pattern p = make_pattern("s", "e");
  p.examples = {"a", "b"};
  store.upsert_pattern(p);
  core::Pattern q = make_pattern("s", "e");
  q.examples = {"c", "d", "e"};
  store.upsert_pattern(q);
  const auto found = store.find(p.id());
  EXPECT_EQ(found->examples.size(), 3u);
}

// Regression: apply_upsert hard-coded the cap at 3, so an Engine configured
// with a different AnalyzerOptions::example_cap silently diverged between
// the in-memory and durable backends. The cap now threads through the
// PatternRepository interface.
TEST(PatternStore, ExampleCapIsConfigurable) {
  PatternStore store;
  core::InMemoryRepository memory;
  store.set_example_cap(5);
  memory.set_example_cap(5);
  for (int i = 0; i < 8; ++i) {
    core::Pattern p = make_pattern("s", "e");
    p.examples = {"example " + std::to_string(i)};
    store.upsert_pattern(p);
    memory.upsert_pattern(p);
  }
  const auto durable = store.find(make_pattern("s", "e").id());
  const auto in_memory = memory.find(make_pattern("s", "e").id());
  ASSERT_TRUE(durable.has_value());
  ASSERT_TRUE(in_memory.has_value());
  EXPECT_EQ(durable->examples.size(), 5u);
  EXPECT_EQ(durable->examples, in_memory->examples)
      << "memory and durable backends diverged on the example cap";
}

TEST(PatternStore, DeletePattern) {
  PatternStore store;
  const core::Pattern a = make_pattern("sshd", "login");
  const core::Pattern b = make_pattern("sshd", "logout");
  store.upsert_pattern(a);
  store.upsert_pattern(b);
  EXPECT_TRUE(store.delete_pattern(a.id()));
  EXPECT_FALSE(store.delete_pattern(a.id())) << "second delete is a no-op";
  EXPECT_EQ(store.pattern_count(), 1u);
  EXPECT_FALSE(store.find(a.id()).has_value());
  ASSERT_EQ(store.load_service("sshd").size(), 1u);
  EXPECT_EQ(store.load_service("sshd")[0].id(), b.id());
}

TEST(PatternStore, DeleteIsReplayedFromWal) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "seqrtg_store_delete_test";
  std::filesystem::remove_all(dir);
  const core::Pattern doomed = make_pattern("s", "doomed");
  const core::Pattern kept = make_pattern("s", "kept");
  {
    PatternStore store;
    ASSERT_TRUE(store.open(dir.string()));
    store.upsert_pattern(doomed);
    store.upsert_pattern(kept);
    EXPECT_TRUE(store.delete_pattern(doomed.id()));
    // No checkpoint: the delete lives only in the WAL.
  }
  PatternStore reopened;
  ASSERT_TRUE(reopened.open(dir.string()));
  EXPECT_FALSE(reopened.find(doomed.id()).has_value())
      << "WAL replay resurrected a deleted pattern";
  EXPECT_TRUE(reopened.find(kept.id()).has_value());
  std::filesystem::remove_all(dir);
}

TEST(PatternStore, ServiceQueries) {
  PatternStore store;
  store.upsert_pattern(make_pattern("sshd", "a"));
  store.upsert_pattern(make_pattern("sshd", "b"));
  store.upsert_pattern(make_pattern("cron", "c"));
  EXPECT_EQ(store.load_service("sshd").size(), 2u);
  EXPECT_EQ(store.load_service("cron").size(), 1u);
  EXPECT_TRUE(store.load_service("x").empty());
  const auto services = store.services();
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0], "cron");
}

TEST(PatternStore, RecordMatch) {
  PatternStore store;
  const core::Pattern p = make_pattern("s", "e", 1);
  store.upsert_pattern(p);
  store.record_match(p.id(), 9, 777);
  const auto found = store.find(p.id());
  EXPECT_EQ(found->stats.match_count, 10u);
  EXPECT_EQ(found->stats.last_matched, 777);
}

TEST(PatternStore, ExportFiltersByCountAndComplexity) {
  PatternStore store;
  store.upsert_pattern(make_pattern("s", "frequent", 100));
  store.upsert_pattern(make_pattern("s", "rare", 1));
  // A pattern of only variables has complexity 1.0.
  core::Pattern vars;
  vars.service = "s";
  core::PatternToken v;
  v.is_variable = true;
  v.var_type = core::TokenType::String;
  v.name = "x";
  vars.tokens = {v, v};
  vars.stats.match_count = 50;
  store.upsert_pattern(vars);

  PatternStore::ExportFilter filter;
  filter.min_match_count = 10;
  filter.max_complexity = 0.9;
  const auto exported = store.export_patterns(filter);
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].text(), "frequent %n%");
}

TEST(PatternStore, ExportOrdersByMatchCountDesc) {
  PatternStore store;
  store.upsert_pattern(make_pattern("s", "mid", 10));
  store.upsert_pattern(make_pattern("s", "top", 100));
  store.upsert_pattern(make_pattern("s", "low", 1));
  const auto exported = store.export_patterns({});
  ASSERT_EQ(exported.size(), 3u);
  EXPECT_EQ(exported[0].stats.match_count, 100u);
  EXPECT_EQ(exported[2].stats.match_count, 1u);
}

TEST(PatternStore, ExportFiltersByService) {
  PatternStore store;
  store.upsert_pattern(make_pattern("a", "x"));
  store.upsert_pattern(make_pattern("b", "y"));
  PatternStore::ExportFilter filter;
  filter.service = "a";
  EXPECT_EQ(store.export_patterns(filter).size(), 1u);
}

TEST(PatternStore, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "seqrtg_store_test.db")
          .string();
  core::Pattern p = make_pattern("sshd", "login", 42);
  p.examples = {"login 7"};
  {
    PatternStore store;
    store.upsert_pattern(p);
    ASSERT_TRUE(store.save(path));
  }
  PatternStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.pattern_count(), 1u);
  const auto found = loaded.find(p.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->stats.match_count, 42u);
  EXPECT_EQ(found->examples.size(), 1u);
  EXPECT_EQ(found->tokens, p.tokens);
  std::remove(path.c_str());
}

TEST(PatternStore, LoadFailureLeavesUsableEmptyStore) {
  PatternStore store;
  EXPECT_FALSE(store.load("/nonexistent/file.db"));
  // The store must still work after a failed load.
  store.upsert_pattern(make_pattern("s", "e"));
  EXPECT_EQ(store.pattern_count(), 1u);
}

TEST(PatternStore, CorruptRowIsSkippedAndCounted) {
  PatternStore store;
  store.upsert_pattern(make_pattern("svc", "good", 5));
  // A row whose tokens JSON AND display text are both unparseable: readers
  // must skip it (never abort the scan) and count it.
  store.database().exec(
      "INSERT INTO patterns VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {"badrow", "svc", "%unterminated", "{{{not json", 1, 0.0, 3, 1, 1});
  auto& corrupt =
      obs::default_registry().counter("seqrtg_store_corrupt_rows_total", "");
  const std::uint64_t before = corrupt.value();
  const auto patterns = store.load_service("svc");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].stats.match_count, 5u);
  EXPECT_GT(corrupt.value(), before);
  // find() and export_patterns() take the same skip path.
  EXPECT_FALSE(store.find("badrow").has_value());
  EXPECT_EQ(store.export_patterns({}).size(), 1u);
}

TEST(PatternStore, DegradedRowFallsBackToDisplayText) {
  PatternStore store;
  // Valid display text, corrupt JSON: the row survives with String-typed
  // variables instead of being dropped.
  store.database().exec(
      "INSERT INTO patterns VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {"degraded", "svc", "login %user%", "not json", 2, 0.5, 4, 1, 1});
  const auto found = store.find("degraded");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->text(), "login %user%");
}

TEST(PatternStore, WorksThroughRepositoryInterface) {
  PatternStore store;
  core::PatternRepository& repo = store;
  repo.upsert_pattern(make_pattern("s", "via-interface"));
  EXPECT_EQ(repo.pattern_count(), 1u);
  EXPECT_EQ(repo.services().size(), 1u);
}

}  // namespace
}  // namespace seqrtg::store
