#include "util/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace seqrtg::util {
namespace {

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  const std::string input(1000000, 'a');
  EXPECT_EQ(sha1_hex(input), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 h;
  h.update("Accepted password ");
  h.update("for %user% from ");
  h.update("%srcip%");
  EXPECT_EQ(h.hex_digest(),
            sha1_hex("Accepted password for %user% from %srcip%"));
}

TEST(Sha1, IncrementalAcrossBlockBoundary) {
  // Feed in chunks that straddle the 64-byte block boundary.
  const std::string data(130, 'x');
  Sha1 h;
  h.update(data.substr(0, 63));
  h.update(data.substr(63, 2));
  h.update(data.substr(65));
  EXPECT_EQ(h.hex_digest(), sha1_hex(data));
}

TEST(Sha1, ResetReusesObject) {
  Sha1 h;
  h.update("first");
  (void)h.hex_digest();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.hex_digest(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, ExactBlockLengthInput) {
  const std::string block(64, 'b');
  // Independently computed reference via incremental property: one-shot
  // equals chunked.
  Sha1 h;
  for (int i = 0; i < 64; ++i) h.update("b");
  EXPECT_EQ(h.hex_digest(), sha1_hex(block));
}

TEST(Sha1, BinaryDataWithNulBytes) {
  const std::string data("a\0b\0c", 5);
  Sha1 h;
  h.update(data);
  // Must differ from the hash of "abc" (NULs are significant).
  EXPECT_NE(h.hex_digest(), sha1_hex("abc"));
}

// The pattern-id use case: reproducibility and service sensitivity.
TEST(Sha1, PatternIdReproducible) {
  const std::string text = "%action% from %srcip% port %srcport%";
  EXPECT_EQ(sha1_hex(text + "sshd"), sha1_hex(text + "sshd"));
  EXPECT_NE(sha1_hex(text + "sshd"), sha1_hex(text + "cron"));
}

TEST(Sha1, DigestIs40LowercaseHexChars) {
  const std::string d = sha1_hex("anything");
  ASSERT_EQ(d.size(), 40u);
  for (char c : d) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

}  // namespace
}  // namespace seqrtg::util
