// Deterministic fuzz harness for the JSON-lines ingest surface (ISSUE 4
// satellite): seeded mutations of well-formed records plus raw garbage are
// fed through parse_line / read_batch. The ingester must never crash, must
// account for every non-blank line as exactly accepted or malformed, and
// accepted records must round-trip identically through record_to_json.
#include "core/ingest.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace seqrtg::core {
namespace {

std::string random_text(util::Rng& rng, std::size_t max_len) {
  // Printable ASCII plus the characters that stress the JSON escaper:
  // quotes, backslashes, control bytes, and high (UTF-8 continuation) bytes.
  static constexpr char kSpice[] = "\"\\\t\b\f\n\r{}[]:,%";
  const std::size_t len = rng.next_below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    switch (rng.next_below(8)) {
      case 0:
        out += kSpice[rng.next_below(sizeof kSpice - 1)];
        break;
      case 1:
        out += static_cast<char>(rng.next_below(256));
        break;
      default:
        out += static_cast<char>(' ' + rng.next_below(95));
        break;
    }
  }
  return out;
}

/// One mutated line: a valid serialised record with seeded byte-level damage
/// (flips, inserts, deletes, truncation, duplication).
std::string mutate(util::Rng& rng, std::string line) {
  const std::size_t edits = 1 + rng.next_below(4);
  for (std::size_t e = 0; e < edits && !line.empty(); ++e) {
    const std::size_t pos = rng.next_below(line.size());
    switch (rng.next_below(5)) {
      case 0:  // flip a byte
        line[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:  // insert a byte
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<char>(rng.next_below(256)));
        break;
      case 2:  // delete a byte
        line.erase(line.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      case 3:  // truncate
        line.resize(pos);
        break;
      case 4:  // duplicate a span
        line += line.substr(pos, rng.next_below(8) + 1);
        break;
    }
  }
  return line;
}

std::string build_line(util::Rng& rng) {
  switch (rng.next_below(10)) {
    case 0:
      return "";  // blank
    case 1:
      return "   \t  ";  // whitespace-only: also blank after trim
    case 2:
      return random_text(rng, 80);  // raw garbage
    case 3: {  // structurally valid JSON, wrong shape
      switch (rng.next_below(4)) {
        case 0: return "[1,2,3]";
        case 1: return "{\"service\":\"s\"}";
        case 2: return "{\"service\":42,\"message\":\"m\"}";
        default: return "\"just a string\"";
      }
    }
    case 4:
    case 5:
    case 6: {  // mutated valid record
      const LogRecord record{random_text(rng, 12), random_text(rng, 60)};
      return mutate(rng, record_to_json(record));
    }
    default: {  // valid record
      const LogRecord record{random_text(rng, 12), random_text(rng, 60)};
      return record_to_json(record);
    }
  }
}

/// Splits exactly like std::getline over the assembled stream: '\n' is the
/// separator, and a trailing fragment without one is still a line.
std::vector<std::string> getline_split(const std::string& stream) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= stream.size()) {
    const std::size_t nl = stream.find('\n', start);
    if (nl == std::string::npos) {
      if (start < stream.size()) lines.push_back(stream.substr(start));
      break;
    }
    lines.push_back(stream.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// The seed of one fuzz round. Rounds are independently seeded (not one
/// shared Rng stream) so a failing round replays alone:
///   SEQRTG_FUZZ_SEED=<seed> ctest -R ingest_fuzz --output-on-failure
std::uint64_t round_seed(int round) {
  return util::kDefaultSeed ^
         (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(round + 1));
}

TEST(IngestFuzz, ExactAccountingAndRoundTripUnderMutation) {
  const char* replay = std::getenv("SEQRTG_FUZZ_SEED");
  std::uint64_t total_accepted = 0;
  std::uint64_t total_malformed = 0;

  const int rounds = replay != nullptr ? 1 : 300;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed =
        replay != nullptr ? std::strtoull(replay, nullptr, 0)
                          : round_seed(round);
    SCOPED_TRACE("failing seed " + std::to_string(seed) +
                 " — repro: SEQRTG_FUZZ_SEED=" + std::to_string(seed) +
                 " ./ingest_fuzz_test");
    util::Rng rng(seed);
    // Assemble a stream. Mutations may embed '\n' bytes, so the number of
    // fed lines is recomputed from the stream itself, not from the builder.
    std::string stream;
    const std::size_t count = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < count; ++i) {
      stream += build_line(rng);
      if (i + 1 < count || rng.next_below(2) == 0) stream += '\n';
    }
    const std::vector<std::string> lines = getline_split(stream);

    // Oracle: classify each line with parse_line directly.
    std::size_t expect_accepted = 0;
    std::size_t expect_malformed = 0;
    std::size_t expect_blank = 0;
    for (const std::string& line : lines) {
      const std::optional<LogRecord> record =
          JsonStreamIngester::parse_line(line);
      if (record.has_value()) {
        ++expect_accepted;
        // Round-trip identity: serialising the accepted record and parsing
        // it again must yield the identical record.
        const std::optional<LogRecord> again =
            JsonStreamIngester::parse_line(record_to_json(*record));
        ASSERT_TRUE(again.has_value()) << "round " << round;
        EXPECT_EQ(*again, *record) << "round " << round;
      } else if (util::trim(line).empty()) {
        ++expect_blank;
      } else {
        ++expect_malformed;
      }
    }
    ASSERT_EQ(expect_accepted + expect_malformed + expect_blank,
              lines.size());

    // The batch reader must agree with the oracle, whatever the batch size.
    JsonStreamIngester ingester(1 + rng.next_below(16));
    std::istringstream in(stream);
    std::size_t batched = 0;
    while (true) {
      const std::vector<LogRecord> batch = ingester.read_batch(in);
      if (batch.empty()) break;
      batched += batch.size();
    }
    EXPECT_EQ(batched, expect_accepted) << "round " << round;
    EXPECT_EQ(ingester.stats().accepted, expect_accepted)
        << "round " << round;
    EXPECT_EQ(ingester.stats().malformed, expect_malformed)
        << "round " << round;

    total_accepted += expect_accepted;
    total_malformed += expect_malformed;
  }

  // The harness must actually exercise both outcomes (full run only — a
  // single replayed round cannot meet the volume floor).
  if (replay == nullptr) {
    EXPECT_GT(total_accepted, 500u);
    EXPECT_GT(total_malformed, 500u);
  }
}

TEST(IngestFuzz, HugeAndPathologicalLinesDoNotCrash) {
  util::Rng rng(util::kDefaultSeed ^ 0x9e3779b97f4a7c15ULL);
  // A few adversarial shapes no mutation walk is guaranteed to hit.
  std::vector<std::string> lines;
  lines.push_back(std::string(1 << 20, 'x'));                      // 1 MiB junk
  lines.push_back("{\"service\":\"" + std::string(1 << 18, 'a') +
                  "\",\"message\":\"big\"}");
  lines.push_back(std::string(5000, '{'));                         // nesting
  lines.push_back(std::string(5000, '['));
  lines.push_back("{\"service\":\"s\",\"message\":\"" +
                  std::string(2000, '\\') + "\"}");
  std::string unterminated = "{\"service\":\"s\",\"message\":\"m";
  lines.push_back(unterminated);
  for (int i = 0; i < 50; ++i) lines.push_back(random_text(rng, 2000));

  IngestStats stats;
  std::size_t non_blank = 0;
  for (const std::string& line : lines) {
    if (!util::trim(line).empty()) ++non_blank;
    const std::optional<LogRecord> record =
        JsonStreamIngester::parse_and_count_line(line, stats);
    if (record.has_value()) {
      const std::optional<LogRecord> again =
          JsonStreamIngester::parse_line(record_to_json(*record));
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *record);
    }
  }
  EXPECT_EQ(stats.accepted + stats.malformed, non_blank);
}

}  // namespace
}  // namespace seqrtg::core
