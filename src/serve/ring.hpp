// Consistent-hash ring assigning services to cluster shards.
//
// The paper's partition-by-service property ("patterns never cross
// services") is what makes sharding correctness-preserving: as long as
// every record of a service lands on the same shard, an N-shard cluster
// mines exactly the pattern set one node would — the cluster differential
// oracle holds the routers and nodes to that.
//
// The hash is FNV-1a folded through splitmix-style avalanche steps, NOT
// std::hash: the ring must agree across processes, builds and standard
// libraries, because the router and every test that predicts placement
// (testkit's cluster oracle, the CI smoke diff) recompute it
// independently. Virtual nodes smooth the distribution so 3 shards do
// not end up owning 70/20/10% of the services.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace seqrtg::serve {

/// Portable 64-bit FNV-1a with a final avalanche (the ring's hash; also
/// exposed so tests can predict placement without a ring instance).
std::uint64_t cluster_hash64(std::string_view data);

class HashRing {
 public:
  /// `shards` is clamped >= 1. Each shard contributes `vnodes` points.
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  /// The shard owning `service`: the first ring point at or after the
  /// service's hash, wrapping at the top.
  std::size_t shard_for(std::string_view service) const;

  std::size_t shards() const { return shards_; }

 private:
  std::size_t shards_;
  /// (point hash, shard) sorted by hash; ties broken by shard index so
  /// the ring is deterministic even on (astronomically unlikely) hash
  /// collisions.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace seqrtg::serve
