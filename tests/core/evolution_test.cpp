#include "core/evolution.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/parser.hpp"
#include "core/repository.hpp"
#include "core/validation.hpp"
#include "store/pattern_store.hpp"

namespace seqrtg::core {
namespace {

namespace fs = std::filesystem;

PatternToken constant(std::string text, bool space = true) {
  PatternToken t;
  t.is_variable = false;
  t.text = std::move(text);
  t.is_space_before = space;
  return t;
}

PatternToken variable(TokenType type, std::string name, bool space = true) {
  PatternToken t;
  t.is_variable = true;
  t.var_type = type;
  t.name = std::move(name);
  t.is_space_before = space;
  return t;
}

Pattern make_pattern(std::string service, std::vector<PatternToken> tokens,
                     std::vector<std::string> examples,
                     std::uint64_t count = 1) {
  Pattern p;
  p.service = std::move(service);
  p.tokens = std::move(tokens);
  p.examples = std::move(examples);
  p.stats.match_count = count;
  return p;
}

ValueSketch singleton_sketch(std::string value, std::uint64_t observations) {
  ValueSketch s;
  for (std::uint64_t i = 0; i < observations; ++i) s.observe(value);
  return s;
}

TEST(ValueSketch, TracksDistinctValuesUpToCap) {
  ValueSketch s;
  s.observe("a");
  s.observe("a");
  EXPECT_TRUE(s.singleton());
  EXPECT_EQ(s.observations, 2u);
  s.observe("b");
  EXPECT_FALSE(s.singleton());
  for (int i = 0; i < 20; ++i) s.observe("v" + std::to_string(i));
  EXPECT_TRUE(s.overflow);
  EXPECT_LE(s.values.size(), ValueSketch::kMaxValues);
}

TEST(SketchRegistry, ObservesForgetAndIgnoresArityDrift) {
  SketchRegistry reg;
  reg.observe("p1", {{"host", "alpha"}, {"port", "80"}});
  reg.observe("p1", {{"host", "alpha"}, {"port", "81"}});
  // Arity drift (pattern rewritten under the same id) must not crash or
  // corrupt the existing sketches.
  reg.observe("p1", {{"host", "alpha"}});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.at("p1").size(), 2u);
  EXPECT_TRUE(snap.at("p1")[0].singleton());
  EXPECT_FALSE(snap.at("p1")[1].singleton());
  EXPECT_EQ(reg.pattern_count(), 1u);
  reg.forget("p1");
  EXPECT_EQ(reg.pattern_count(), 0u);
}

TEST(Evolution, SpecialisesCollapsedStringWildcard) {
  const Pattern p = make_pattern(
      "s",
      {constant("connected", false), constant("to"),
       variable(TokenType::String, "host")},
      {"connected to backend"}, 10);
  std::map<std::string, std::vector<ValueSketch>> sketches;
  sketches[p.id()] = {singleton_sketch("backend", 5)};

  EvolutionReport report;
  const auto evolved = evolve_service({p}, sketches, EvolutionOptions{},
                                      &report);
  ASSERT_EQ(evolved.size(), 1u);
  EXPECT_EQ(evolved[0].text(), "connected to backend");
  EXPECT_EQ(report.specialised, 1u);
  EXPECT_EQ(evolved[0].stats.match_count, 10u);
}

TEST(Evolution, SpecialisationGateRejectsDeadTypedRewrite) {
  // "42" scans as an Integer token; a literal edge "42" would never match
  // it, so the empirical liveness gate must veto this rewrite even though
  // the sketch collapsed.
  const Pattern p = make_pattern(
      "s", {constant("took", false), variable(TokenType::Integer, "n")},
      {"took 42"}, 10);
  std::map<std::string, std::vector<ValueSketch>> sketches;
  sketches[p.id()] = {singleton_sketch("42", 8)};

  EvolutionReport report;
  const auto evolved = evolve_service({p}, sketches, EvolutionOptions{},
                                      &report);
  ASSERT_EQ(evolved.size(), 1u);
  EXPECT_EQ(evolved[0].text(), p.text());
  EXPECT_EQ(report.specialised, 0u);
}

TEST(Evolution, RespectsMinObservations) {
  const Pattern p = make_pattern(
      "s",
      {constant("connected", false), constant("to"),
       variable(TokenType::String, "host")},
      {"connected to backend"}, 10);
  std::map<std::string, std::vector<ValueSketch>> sketches;
  sketches[p.id()] = {singleton_sketch("backend", 2)};  // below default 3

  EvolutionReport report;
  const auto evolved = evolve_service({p}, sketches, EvolutionOptions{},
                                      &report);
  EXPECT_EQ(evolved[0].text(), p.text());
  EXPECT_EQ(report.specialised, 0u);
}

TEST(Evolution, MergesTypedNearDuplicatesIntoWidenedVariable) {
  // Same shape, differing only in the variable's type at one position:
  // widening folds them into one %string% pattern (which collides with
  // p2's id — the fold must merge, not duplicate).
  const Pattern p1 = make_pattern(
      "s", {constant("recv", false), variable(TokenType::Integer, "v")},
      {"recv 7"}, 4);
  const Pattern p2 = make_pattern(
      "s", {constant("recv", false), variable(TokenType::String, "v")},
      {"recv hello"}, 6);

  EvolutionReport report;
  const auto evolved =
      evolve_service({p1, p2}, {}, EvolutionOptions{}, &report);
  ASSERT_EQ(evolved.size(), 1u);
  // The members' shared field name survives; the type widened to String.
  EXPECT_EQ(evolved[0].text(), "recv %v%");
  ASSERT_TRUE(evolved[0].tokens[1].is_variable);
  EXPECT_EQ(evolved[0].tokens[1].var_type, TokenType::String);
  EXPECT_EQ(evolved[0].stats.match_count, 10u);
  EXPECT_EQ(report.merged, 1u);

  Parser parser{ScannerOptions{}, SpecialTokenOptions{}};
  parser.add_pattern(evolved[0]);
  EXPECT_TRUE(parser.parse("s", "recv 7").has_value());
  EXPECT_TRUE(parser.parse("s", "recv hello").has_value());
}

TEST(Evolution, MergesLiteralGroupAtCardinalityThreshold) {
  std::vector<Pattern> patterns;
  for (const std::string w : {"alpha", "beta", "gamma", "delta"}) {
    patterns.push_back(make_pattern(
        "s", {constant("state", false), constant(w)}, {"state " + w}, 2));
  }
  EvolutionReport report;
  const auto evolved =
      evolve_service(patterns, {}, EvolutionOptions{}, &report);
  ASSERT_EQ(evolved.size(), 1u);
  EXPECT_EQ(evolved[0].text(), "state %string%");
  EXPECT_EQ(evolved[0].stats.match_count, 8u);
  EXPECT_EQ(report.merged, 1u);
}

TEST(Evolution, SmallLiteralGroupDoesNotMerge) {
  const Pattern p1 = make_pattern(
      "s", {constant("state", false), constant("alpha")}, {"state alpha"});
  const Pattern p2 = make_pattern(
      "s", {constant("state", false), constant("beta")}, {"state beta"});
  EvolutionReport report;
  const auto evolved =
      evolve_service({p1, p2}, {}, EvolutionOptions{}, &report);
  EXPECT_EQ(evolved.size(), 2u);
  EXPECT_EQ(report.merged, 0u);
}

TEST(Evolution, EvictsByTtlAndKeepsUndatedPatterns) {
  const std::int64_t now = 1000 * 86400;
  Pattern stale = make_pattern(
      "s", {constant("old", false), constant("msg")}, {"old msg"}, 3);
  stale.stats.last_matched = now - 40 * 86400;
  Pattern fresh = make_pattern(
      "s", {constant("new", false), constant("msg")}, {"new msg"}, 3);
  fresh.stats.last_matched = now - 86400;
  const Pattern undated = make_pattern(
      "s", {constant("undated", false), constant("msg")}, {"undated msg"},
      3);

  EvolutionOptions opts;
  opts.ttl_days = 30;
  opts.now_unix = now;
  EvolutionReport report;
  const auto evolved =
      evolve_service({stale, fresh, undated}, {}, opts, &report);
  ASSERT_EQ(evolved.size(), 2u);
  EXPECT_EQ(report.evicted, 1u);
  for (const Pattern& p : evolved) {
    EXPECT_NE(p.id(), stale.id());
  }
}

TEST(Evolution, NoActionsReturnsInputUntouched) {
  const Pattern p = make_pattern(
      "s", {constant("boot", false), constant("ok")}, {"boot ok"}, 1);
  EvolutionReport report;
  const auto evolved = evolve_service({p}, {}, EvolutionOptions{}, &report);
  EXPECT_EQ(evolved.size(), 1u);
  EXPECT_FALSE(report.changed());
  EXPECT_EQ(report.services_rejected, 0u);
}

TEST(Evolution, EvolvedSetRevalidatesCleanly) {
  std::vector<Pattern> patterns;
  for (const std::string w : {"alpha", "beta", "gamma", "delta"}) {
    patterns.push_back(make_pattern(
        "s", {constant("state", false), constant(w)}, {"state " + w}, 2));
  }
  patterns.push_back(make_pattern(
      "s",
      {constant("recv", false), variable(TokenType::Integer, "n")},
      {"recv 12"}, 5));
  EvolutionReport report;
  const auto evolved =
      evolve_service(patterns, {}, EvolutionOptions{}, &report);
  EXPECT_TRUE(validate_patterns(evolved).ok());
}

TEST(Evolution, RepositoryRewriteDeletesConsumedPatterns) {
  InMemoryRepository repo;
  std::vector<std::string> old_ids;
  for (const std::string w : {"alpha", "beta", "gamma", "delta"}) {
    const Pattern p = make_pattern(
        "svc", {constant("state", false), constant(w)}, {"state " + w}, 2);
    old_ids.push_back(p.id());
    repo.upsert_pattern(p);
  }
  const Pattern untouched = make_pattern(
      "other", {constant("boot", false), constant("ok")}, {"boot ok"}, 1);
  repo.upsert_pattern(untouched);

  const EvolutionReport report =
      evolve_repository(repo, nullptr, EvolutionOptions{});
  EXPECT_EQ(report.services_seen, 2u);
  EXPECT_EQ(report.services_changed, 1u);
  EXPECT_EQ(report.merged, 1u);

  const auto svc = repo.load_service("svc");
  ASSERT_EQ(svc.size(), 1u);
  EXPECT_EQ(svc[0].text(), "state %string%");
  EXPECT_EQ(svc[0].stats.match_count, 8u);
  ASSERT_EQ(repo.load_service("other").size(), 1u);
  EXPECT_EQ(repo.load_service("other")[0].id(), untouched.id());
}

TEST(Evolution, SketchRegistryForgetsRewrittenPatterns) {
  InMemoryRepository repo;
  const Pattern p = make_pattern(
      "s",
      {constant("connected", false), constant("to"),
       variable(TokenType::String, "host")},
      {"connected to backend"}, 10);
  repo.upsert_pattern(p);
  SketchRegistry sketches;
  sketches.observe(p.id(), {{"host", "backend"}});
  sketches.observe(p.id(), {{"host", "backend"}});
  sketches.observe(p.id(), {{"host", "backend"}});

  const EvolutionReport report =
      evolve_repository(repo, &sketches, EvolutionOptions{});
  EXPECT_EQ(report.specialised, 1u);
  // The old id was rewritten away; its sketches must go with it.
  EXPECT_EQ(sketches.pattern_count(), 0u);
  const auto evolved = repo.load_service("s");
  ASSERT_EQ(evolved.size(), 1u);
  EXPECT_EQ(evolved[0].text(), "connected to backend");
}

// The crash-safety contract: an evolution rewrite of a durable store is one
// WAL commit group per service. Killing the process right after the pass
// (no checkpoint) and reopening cold must replay to exactly the evolved
// state — deletes included.
TEST(Evolution, DurableRewriteSurvivesColdReopenViaWalReplay) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("seqrtg_evolution_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::string merged_text;
  {
    store::PatternStore store;
    ASSERT_TRUE(store.open(dir.string()));
    for (const std::string w : {"alpha", "beta", "gamma", "delta"}) {
      store.upsert_pattern(make_pattern(
          "svc", {constant("state", false), constant(w)}, {"state " + w},
          2));
    }
    const EvolutionReport report =
        evolve_repository(store, nullptr, EvolutionOptions{});
    ASSERT_EQ(report.merged, 1u);
    const auto evolved = store.load_service("svc");
    ASSERT_EQ(evolved.size(), 1u);
    merged_text = evolved[0].text();
    // No checkpoint: the store closes with the rewrite only in the WAL.
  }

  store::PatternStore reopened;
  ASSERT_TRUE(reopened.open(dir.string()));
  const auto recovered = reopened.load_service("svc");
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].text(), merged_text);
  EXPECT_EQ(recovered[0].stats.match_count, 8u);
  fs::remove_all(dir);
}

TEST(SketchPersistence, JsonRoundTripIsLossless) {
  std::map<std::string, std::vector<ValueSketch>> sketches;
  ValueSketch a;
  a.values = {"10", "42", "97"};
  a.observations = 12;
  ValueSketch b;
  b.values = {"alpha"};
  b.overflow = true;
  b.observations = 1000;
  sketches["svc/pattern-1"] = {a, b};
  sketches["svc/pattern-2"] = {};
  sketches["other/p"] = {ValueSketch{}};

  const std::string json = sketches_to_json(sketches);
  const auto restored = sketches_from_json(json);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), sketches.size());
  for (const auto& [id, positions] : sketches) {
    const auto it = restored->find(id);
    ASSERT_NE(it, restored->end()) << id;
    ASSERT_EQ(it->second.size(), positions.size()) << id;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      EXPECT_EQ(it->second[i].values, positions[i].values) << id;
      EXPECT_EQ(it->second[i].overflow, positions[i].overflow) << id;
      EXPECT_EQ(it->second[i].observations, positions[i].observations)
          << id;
    }
  }
}

TEST(SketchPersistence, MalformedOrSkewedJsonRestoresNothing) {
  EXPECT_FALSE(sketches_from_json("").has_value());
  EXPECT_FALSE(sketches_from_json("not json at all").has_value());
  EXPECT_FALSE(sketches_from_json("{\"patterns\":[]}").has_value());
  // Unknown version: start empty rather than guess at the schema.
  EXPECT_FALSE(
      sketches_from_json("{\"version\":2,\"patterns\":[]}").has_value());
  // Oversized value lists clamp to the overflow representation instead of
  // resurrecting an impossible sketch.
  std::string fat = "{\"version\":1,\"patterns\":[{\"id\":\"p\","
                    "\"positions\":[{\"values\":[";
  for (std::size_t i = 0; i <= ValueSketch::kMaxValues; ++i) {
    if (i != 0) fat += ',';
    fat += "\"v" + std::to_string(i) + "\"";
  }
  fat += "],\"overflow\":false,\"observations\":9}]}]}";
  const auto clamped = sketches_from_json(fat);
  ASSERT_TRUE(clamped.has_value());
  const auto& positions = clamped->at("p");
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(positions[0].values.size(), ValueSketch::kMaxValues);
  EXPECT_TRUE(positions[0].overflow);
  EXPECT_EQ(positions[0].observations, 9u);
}

TEST(SketchPersistence, RegistryRestoreSeedsFutureObservations) {
  SketchRegistry registry;
  std::map<std::string, std::vector<ValueSketch>> seed;
  ValueSketch position;
  position.values = {"5", "6"};
  position.observations = 2;
  seed["svc/p"] = {position};
  registry.restore(seed);
  // New observations extend the restored sketch instead of starting over.
  registry.observe("svc/p", {{"field0", "7"}});
  const auto snapshot = registry.snapshot();
  const auto& restored = snapshot.at("svc/p");
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].values,
            (std::vector<std::string>{"5", "6", "7"}));
  EXPECT_EQ(restored[0].observations, 3u);
}

}  // namespace
}  // namespace seqrtg::core
