// Analyser trie.
//
// Paper §III: "After tokenisation, the Sequence analyser builds a trie with
// the tokens. The trie data structure allows for very fast search and
// retrieval. Once the trie is built it performs a comparison of all of the
// tokens positioned at the same level that share the same parent and child
// nodes. During this comparison the relevant parts are merged to produce
// the patterns."
//
// Implementation: token sequences are inserted as trie paths. Typed tokens
// (Integer, IPv4, Time, ...) collapse onto a per-type wildcard edge at
// insertion — they are variables by construction. Literal tokens keep their
// value as the edge key. The fold pass then walks the trie and merges
// sibling literal edges that behave like variables (digit-bearing values,
// paths, high fan-out positions) into a generic %string% wildcard, merging
// their subtrees recursively. Terminal nodes carry match counts and up to
// three example messages.
//
// Memory layout (zero-copy hot path): nodes are bump-allocated from a
// per-trie arena instead of per-node unique_ptrs, literal edge text is
// deduplicated into a per-trie StringInterner, and edge keys are two-word
// (type, interned-id) values held in a flat small-map — linear scan up to
// a handful of entries, hash index above. Insertion therefore performs no
// string allocation at all for already-seen literals, and node teardown is
// one arena sweep per batch. Tokens passed to insert() may view the caller's
// message buffer; every byte the trie keeps is copied into the interner or
// the node's example strings during the call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/pattern.hpp"
#include "core/token.hpp"
#include "util/arena.hpp"
#include "util/interner.hpp"

namespace seqrtg::core {

/// Tuning knobs for the fold (merge) pass. Defaults reproduce Sequence-RTG
/// behaviour; the flags marked "future work" implement §VI extensions and
/// are exercised by the ablation benches.
struct AnalyzerOptions {
  /// A node with more distinct literal children than this merges them all
  /// (unbounded-cardinality positions such as usernames).
  std::size_t max_literal_children = 12;
  /// Merge >= 2 distinct digit-bearing / path-like literal siblings.
  bool merge_variable_literals = true;
  /// Pure-word literal siblings (usernames, hostne words...) merge when at
  /// least this many of them "share the same parent and child nodes"
  /// (identical subtree shape, the paper's trie comparison). Low values
  /// risk fusing distinct events that differ in one verb ("Deleting" vs
  /// "Creating"); high values leave word-valued variables split.
  std::size_t min_word_cardinality = 4;
  /// Future work (fixes the Proxifier split): when a position has both a
  /// typed edge (e.g. Integer for "64") and a variable-looking literal edge
  /// (e.g. "64*"), merge them into one %string% variable.
  bool merge_mixed_alnum = false;
  /// Future work §VI: positions whose literal cardinality is at most
  /// `semi_constant_max` keep each value as its own pattern instead of
  /// merging ("semi-constant" tokens).
  bool semi_constant_split = false;
  std::size_t semi_constant_max = 3;
  /// Cap on stored example messages per pattern.
  std::size_t example_cap = 3;
};

/// Edge label: a token type plus, for literals, the interned id of the edge
/// text (StringInterner::kInvalid for typed wildcard edges). Two words —
/// comparison is integer compare, no string touch.
struct EdgeKey {
  TokenType type = TokenType::Literal;
  util::StringInterner::Id value_id = util::StringInterner::kInvalid;

  bool operator==(const EdgeKey& other) const = default;

  /// Dense packing for hashing (type and id are both well under 32 bits).
  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(type) << 32) |
           static_cast<std::uint64_t>(value_id);
  }
};

class TrieNode;

/// Flat small-map from EdgeKey to child node. Most trie nodes have a
/// handful of children (the skeleton of a log message is near-linear), so
/// edges live in a small vector scanned linearly; nodes that fan out past
/// kFlatMax entries get a hash index on the side. Iteration order is
/// deterministic (insertion order, with erase() compacting from the back).
class EdgeMap {
 public:
  using Entry = std::pair<EdgeKey, TrieNode*>;

  /// Child for `key`, or nullptr.
  TrieNode* find(EdgeKey key) const {
    if (index_ == nullptr) {
      for (const Entry& e : entries_) {
        if (e.first == key) return e.second;
      }
      return nullptr;
    }
    const auto it = index_->find(key.packed());
    return it == index_->end() ? nullptr : entries_[it->second].second;
  }

  /// Inserts (key -> node); `key` must not be present.
  void emplace(EdgeKey key, TrieNode* node);

  /// Removes `key` (must be present). The last entry is moved into the
  /// freed slot.
  void erase(EdgeKey key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::vector<Entry>::const_iterator begin() const {
    return entries_.begin();
  }
  std::vector<Entry>::const_iterator end() const { return entries_.end(); }

 private:
  /// Linear scan beats hashing below this size; measured crossover for
  /// two-word keys is well above typical trie fan-out.
  static constexpr std::size_t kFlatMax = 8;

  std::vector<Entry> entries_;
  /// key.packed() -> position in entries_; built lazily at kFlatMax.
  std::unique_ptr<std::unordered_map<std::uint64_t, std::uint32_t>> index_;
};

class TrieNode {
 public:
  EdgeMap children;
  /// Number of inserted sequences ending exactly here.
  std::uint64_t terminal_count = 0;
  /// Number of inserted sequences passing through this node.
  std::uint64_t pass_count = 0;
  /// Example original messages for terminal nodes (deduplicated, capped).
  std::vector<std::string> examples;
  /// Spacing of the token that labelled the edge into this node (first
  /// occurrence wins; ties in real logs are overwhelmingly consistent).
  bool is_space_before = false;
  /// key=value key attributed to this position (interned; kInvalid when
  /// absent); cleared on conflict.
  util::StringInterner::Id key_id = util::StringInterner::kInvalid;
  bool key_conflict = false;

  /// Recursively counts nodes (memory accounting for the batching logic).
  std::size_t subtree_size() const;
};

/// One analysis trie. AnalyzeByService instantiates one per (service,
/// token-count) group; the seminal Analyze path uses a single instance for
/// everything. Owns the node arena and the literal interner; patterns
/// emitted by analyze() copy every byte out, so they outlive the trie.
class AnalyzerTrie {
 public:
  explicit AnalyzerTrie(AnalyzerOptions opts = {});

  AnalyzerTrie(const AnalyzerTrie&) = delete;
  AnalyzerTrie& operator=(const AnalyzerTrie&) = delete;
  AnalyzerTrie(AnalyzerTrie&&) noexcept = default;
  AnalyzerTrie& operator=(AnalyzerTrie&&) noexcept = default;

  /// Inserts a scanned message. `original` is kept as a candidate example.
  /// Token views need only stay valid for the duration of the call.
  void insert(const std::vector<Token>& tokens, std::string_view original);

  /// Runs the merge pass and emits patterns (deterministic order). The trie
  /// remains usable for further inserts afterwards, though typical usage is
  /// insert-all-then-analyze per batch.
  std::vector<Pattern> analyze(std::string_view service);

  std::uint64_t message_count() const { return message_count_; }
  std::size_t node_count() const;
  const TrieNode& root() const { return *root_; }

  /// The literal pool backing this trie's edge keys.
  const util::StringInterner& interner() const { return interner_; }
  /// Bytes reserved by the node arena (memory accounting).
  std::size_t arena_bytes() const { return arena_.bytes_reserved(); }
  /// Resident bytes of the node arena including bookkeeping (the figure
  /// the governance accountant reports to /metrics).
  std::size_t arena_resident_bytes() const { return arena_.bytes_resident(); }

 private:
  void fold(TrieNode* node);
  void merge_node(TrieNode* dst, TrieNode* src);
  void emit(const TrieNode* node, std::vector<PatternToken>& path,
            std::string_view service, std::vector<Pattern>* out) const;
  TrieNode* new_node();
  std::string_view key_text(EdgeKey key) const {
    return key.value_id == util::StringInterner::kInvalid
               ? std::string_view()
               : interner_.view(key.value_id);
  }

  AnalyzerOptions opts_;
  util::Arena arena_;
  util::StringInterner interner_;
  TrieNode* root_;
  std::uint64_t message_count_ = 0;
};

/// Heuristic: does a literal value look like a variable rather than a fixed
/// word of the message skeleton? Digit-bearing values, paths, e-mail-ish
/// strings and very long values qualify.
bool literal_looks_variable(std::string_view value);

/// Order-independent structural hash of a subtree (edge keys + terminal
/// flags; counts excluded). Used by the fold pass to find literal siblings
/// "that share the same parent and child nodes". Only meaningful between
/// subtrees of the same trie (edge ids come from the shared interner).
std::uint64_t subtree_signature(const TrieNode& node);

}  // namespace seqrtg::core
