file(REMOVE_RECURSE
  "libseqrtg_exporters.a"
)
