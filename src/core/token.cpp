#include "core/token.hpp"

#include "obs/metrics.hpp"

namespace seqrtg::core {

std::string_view token_type_tag(TokenType t) {
  switch (t) {
    case TokenType::Literal: return "literal";
    case TokenType::Integer: return "integer";
    case TokenType::Float: return "float";
    case TokenType::Hex: return "hex";
    case TokenType::Time: return "time";
    case TokenType::IPv4: return "ipv4";
    case TokenType::IPv6: return "ipv6";
    case TokenType::Mac: return "mac";
    case TokenType::Url: return "url";
    case TokenType::Email: return "email";
    case TokenType::Host: return "host";
    case TokenType::Path: return "path";
    case TokenType::String: return "string";
    case TokenType::Rest: return "rest";
  }
  return "literal";
}

TokenType token_type_from_tag(std::string_view tag) {
  if (tag == "integer") return TokenType::Integer;
  if (tag == "float") return TokenType::Float;
  if (tag == "hex") return TokenType::Hex;
  if (tag == "time") return TokenType::Time;
  if (tag == "ipv4") return TokenType::IPv4;
  if (tag == "ipv6") return TokenType::IPv6;
  if (tag == "mac") return TokenType::Mac;
  if (tag == "url") return TokenType::Url;
  if (tag == "email") return TokenType::Email;
  if (tag == "host") return TokenType::Host;
  if (tag == "path") return TokenType::Path;
  if (tag == "string") return TokenType::String;
  if (tag == "rest") return TokenType::Rest;
  return TokenType::Literal;
}

bool is_variable_type(TokenType t) { return t != TokenType::Literal; }

namespace {

obs::Counter& allocs_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "seqrtg_scanner_allocs_total",
      "TokenBuffer storage growths; flat in steady state when buffers are "
      "reused (the zero-allocation hot-path claim, observable)");
  return c;
}

}  // namespace

void TokenBuffer::register_metrics() { allocs_counter(); }

void TokenBuffer::note_grow() {
  if (!obs::telemetry_enabled()) return;
  allocs_counter().inc();
}

std::string reconstruct(const Token* begin, const Token* end) {
  // First pass sizes the output exactly (mirroring the append conditions),
  // so the string is reserved once instead of growing per token.
  std::size_t total = 0;
  for (const Token* t = begin; t != end; ++t) {
    if (t->is_space_before && total > 0) ++total;
    total += t->value.size();
  }
  std::string out;
  out.reserve(total);
  for (const Token* t = begin; t != end; ++t) {
    if (t->is_space_before && !out.empty()) out += ' ';
    out += t->value;
  }
  return out;
}

}  // namespace seqrtg::core
