// The 16 LogHub-like dataset banks (see corpus.hpp). Template sets mirror
// the structure of the real LogHub samples: event counts, header layouts,
// token shapes, and the difficulty characteristics the paper reports
// (easy: Apache/Windows; hard: Linux/HPC/Proxifier; raw-log regressions:
// HealthApp, Proxifier).
#include "loggen/corpus.hpp"

namespace seqrtg::loggen {

namespace {

DatasetSpec hdfs() {
  return {
      "HDFS",
      "081109 {int:100000-999999} {int:10-9999} INFO ",
      {
          {"dfs.DataNode$PacketResponder: PacketResponder {int:0-3} for "
           "block {blk} terminating"},
          {"dfs.DataNode$PacketResponder: Received block {blk} of size "
           "{int} from /{ip}"},
          {"dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: blockMap "
           "updated: {ip}:{port} is added to {blk} size {int}"},
          {"dfs.DataNode$DataXceiver: Receiving block {blk} src: "
           "/{ip}:{port} dest: /{ip}:{port}"},
          {"dfs.FSNamesystem: BLOCK* NameSystem.allocateBlock: "
           "/usr/data/job/{alnum}/part-{int:0-9999} {blk}"},
          {"dfs.DataNode$DataXceiver: {ip}:{port} Served block {blk} to "
           "/{ip}"},
          {"dfs.DataNode$DataXceiver: writeBlock {blk} received exception "
           "java.io.IOException: Connection reset by peer"},
          {"dfs.DataBlockScanner: Verification {opt:again }succeeded for "
           "{blk}"},
          {"dfs.FSNamesystem: BLOCK* NameSystem.delete: {blk} is added to "
           "invalidSet of {ip}:{port}"},
          {"dfs.DataNode: Deleting block {blk} file {path}"},
          {"dfs.FSNamesystem: BLOCK* ask {ip}:{port} to replicate {blk} to "
           "datanode(s) {ip}:{port}"},
          {"dfs.DataNode$BlockReceiver: Exception in receiveBlock for "
           "block {blk} java.io.IOException: Broken pipe"},
          {"dfs.DataNode: {ip}:{port} Starting thread to transfer block "
           "{blk} to {ip}:{port}"},
          {"dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: Redundant "
           "addStoredBlock request received for {blk} on {ip}:{port} size "
           "{int}"},
      },
      1.1};
}

DatasetSpec hadoop() {
  return {
      "Hadoop",
      "{ts_iso_comma} INFO [main] ",
      {
          {"org.apache.hadoop.mapreduce.v2.app.MRAppMaster: Created "
           "MRAppMaster for application appattempt_{int}_{int:1-9999}_"
           "{int:1-99}"},
          {"org.apache.hadoop.mapred.MapTask: Processing split: "
           "hdfs://{host}:{port}/user/{word}/input/part-{int:0-99}:"
           "{int}+{int}"},
          {"org.apache.hadoop.mapreduce.task.reduce.Fetcher: fetcher#"
           "{int:1-50} about to shuffle output of map "
           "attempt_{int}_{int:1-9999}_m_{int}_{int:0-9} decomp: {int} len: "
           "{int} to {oneof:MEMORY|DISK}"},
          {"org.apache.hadoop.mapred.Task: Task "
           "'attempt_{int}_{int:1-9999}_r_{int}_{int:0-9}' done."},
          {"org.apache.hadoop.mapreduce.v2.app.job.impl.TaskAttemptImpl: "
           "Progress of TaskAttempt attempt_{int}_{int:1-9999}_m_{int}_"
           "{int:0-9} is : {float}"},
          {"org.apache.hadoop.yarn.client.RMProxy: Connecting to "
           "ResourceManager at {host}/{ip}:{port}"},
          {"org.apache.hadoop.mapreduce.Job: map {int:0-100}% reduce "
           "{int:0-100}%"},
          {"org.apache.hadoop.ipc.Client: Retrying connect to server: "
           "{host}/{ip}:{port}. Already tried {int:0-9} time(s); retry "
           "policy is RetryUpToMaximumCountWithFixedSleep(maxRetries={int:"
           "10-50}, sleepTime={int:1-10} SECONDS)"},
          {"org.apache.hadoop.mapreduce.task.reduce.MergeManagerImpl: "
           "closeInMemoryFile -> map-output of size: {int}, inMemoryMapOutputs"
           ".size() -> {int:1-99}, commitMemory -> {int}, usedMemory -> "
           "{int}"},
          {"org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator: "
           "Assigned container container_{int}_{int:1-9999}_{int:1-99}_"
           "{int} to attempt_{int}_{int:1-9999}_m_{int}_{int:0-9}"},
          {"org.apache.hadoop.yarn.util.RackResolver: Resolved {host} to "
           "/default-rack"},
          {"org.apache.hadoop.mapred.ShuffleHandler: Setting connection "
           "close header..."},
          {"org.apache.hadoop.mapreduce.v2.app.job.impl.JobImpl: "
           "job_{int}_{int:1-9999} Job Transitioned from RUNNING to "
           "COMMITTING"},
          {"org.apache.hadoop.metrics2.impl.MetricsSystemImpl: Scheduled "
           "snapshot period at {int:5-60} second(s)."},
      },
      1.1};
}

DatasetSpec spark() {
  return {
      "Spark",
      "{ts_spark} INFO ",
      {
          {"executor.Executor: Finished task {float} in stage {float} (TID "
           "{int}). {int} bytes result sent to driver"},
          {"executor.Executor: Running task {float} in stage {float} (TID "
           "{int})"},
          {"storage.BlockManager: Found block rdd_{int:1-99}_{int:1-999} "
           "locally"},
          {"storage.MemoryStore: Block broadcast_{int:1-999} stored as "
           "values in memory (estimated size {float} KB, free {float} MB)"},
          {"storage.MemoryStore: Block broadcast_{int:1-999}_piece{int:0-9} "
           "stored as bytes in memory (estimated size {float} KB, free "
           "{float} MB)"},
          {"broadcast.TorrentBroadcast: Reading broadcast variable "
           "{int:1-999} took {int} ms"},
          {"scheduler.TaskSetManager: Starting task {float} in stage "
           "{float} (TID {int}, {host}, partition {int:1-999},"
           "PROCESS_LOCAL, {int} bytes)"},
          {"scheduler.TaskSetManager: Finished task {float} in stage "
           "{float} (TID {int}) in {int} ms on {host} ({int:1-99}/{int:1-"
           "999})"},
          {"scheduler.DAGScheduler: ShuffleMapStage {int:1-999} "
           "(saveAsTextFile at {word}.scala:{int:10-999}) finished in "
           "{float} s"},
          {"rdd.HadoopRDD: Input split: hdfs://{host}:{port}/data/"
           "{word}/part-{int:0-9999}:{int}+{int}"},
          {"spark.SecurityManager: Changing view acls to: {word}"},
          {"util.Utils: Successfully started service '{word}' on port "
           "{port}."},
          {"client.TransportClientFactory: Successfully created connection "
           "to {host}/{ip}:{port} after {int:1-999} ms ({int:0-99} ms spent "
           "in bootstraps)"},
          {"storage.ShuffleBlockFetcherIterator: Getting {int:1-999} "
           "non-empty blocks out of {int:1-999} blocks"},
          {"storage.ShuffleBlockFetcherIterator: Started {int:0-99} remote "
           "fetches in {int:1-999} ms"},
          {"executor.CoarseGrainedExecutorBackend: Got assigned task "
           "{int}"},
          {"spark.MapOutputTrackerWorker: Don't have map outputs for "
           "shuffle {int:1-99}, fetching them"},
          {"spark.CacheManager: Partition rdd_{int:1-99}_{int:1-999} not "
           "found, computing it"},
          {"python.PythonRunner: Times: total = {int}, boot = {int:1-999}, "
           "init = {int:1-999}, finish = {int:1-999}"},
      },
      1.1};
}

DatasetSpec zookeeper() {
  return {
      "Zookeeper",
      "{ts_iso_comma} - INFO  ",
      {
          {"[NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181:NIOServerCnxnFactory@"
           "{int:100-999}] - Accepted socket connection from /{ip}:{port}"},
          {"[NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181:NIOServerCnxn@{int:"
           "100-999}] - Closed socket connection for client /{ip}:{port} "
           "which had sessionid 0x{hex:16}"},
          {"[SyncThread:0:ZooKeeperServer@{int:100-999}] - Established "
           "session 0x{hex:16} with negotiated timeout {int:2000-40000} "
           "for client /{ip}:{port}"},
          {"[ProcessThread(sid:0 cport:-1)::PrepRequestProcessor@{int:100-"
           "999}] - Processed session termination for sessionid: "
           "0x{hex:16}"},
          {"[SessionTracker:ZooKeeperServer@{int:100-999}] - Expiring "
           "session 0x{hex:16}, timeout of {int:2000-40000}ms exceeded"},
          {"[QuorumPeer[myid={int:1-5}]/0.0.0.0:2181:Leader@{int:100-999}] "
           "- Have quorum of supporters; starting up and setting last "
           "processed zxid: 0x{hex:9}"},
          {"[NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181:NIOServerCnxn@{int:"
           "100-999}] - caught end of stream exception"},
          {"[WorkerReceiver[myid={int:1-5}]:FastLeaderElection@{int:100-"
           "999}] - Notification: {int:1-5} (n.leader), 0x{hex:9} (n.zxid), "
           "0x{hex:1} (n.round), LOOKING (n.state), {int:1-5} (n.sid), "
           "0x{hex:1} (n.peerEPoch), LEADING (my state)"},
          {"[main:QuorumPeer@{int:100-999}] - tickTime set to "
           "{int:2000-4000}"},
          {"[LearnerHandler-/{ip}:{port}:LearnerHandler@{int:100-999}] - "
           "Synchronizing with Follower sid: {int:1-5} maxCommittedLog="
           "0x{hex:9} minCommittedLog=0x{hex:9} peerLastZxid=0x{hex:9}"},
      },
      1.1};
}

DatasetSpec openstack() {
  return {
      "OpenStack",
      "nova-compute.log.{int:1-9999}.{ts_iso} {int:1000-9999} INFO ",
      {
          {"nova.compute.manager [req-{uuid} {hex:32} {hex:32} - - -] "
           "[instance: {uuid}] VM Started (Lifecycle Event)"},
          {"nova.compute.manager [req-{uuid} {hex:32} {hex:32} - - -] "
           "[instance: {uuid}] VM {opt:Resumed }Paused (Lifecycle Event)"},
          {"nova.compute.manager [req-{uuid} {hex:32} {hex:32} - - -] "
           "[instance: {uuid}] During sync_power_state the instance has a "
           "pending task (spawning). Skip."},
          {"nova.virt.libvirt.imagecache [req-{uuid} - - - - -] image "
           "{uuid} at ({path}): checking"},
          {"nova.compute.resource_tracker [req-{uuid} - - - - -] Final "
           "resource view: name={host} phys_ram={int}MB used_ram={int}MB "
           "phys_disk={int}GB used_disk={int}GB total_vcpus={int:1-64} "
           "used_vcpus={int:0-64} pci_stats=[]{opt: disabled}"},
          {"nova.compute.claims [req-{uuid} {hex:32} {hex:32} - - -] "
           "[instance: {uuid}] Total memory: {int} MB, used: {float} MB"},
          {"nova.osapi_compute.wsgi.server [req-{uuid} {hex:32} {hex:32} - "
           "- -] {ip} \"GET /v2/{hex:32}/servers/detail HTTP/1.1\" status: "
           "200 len: {int} time: {float}"},
          {"nova.osapi_compute.wsgi.server [req-{uuid} {hex:32} {hex:32} - "
           "- -] {ip} \"POST /v2/{hex:32}/os-server-external-events "
           "HTTP/1.1\" status: 200 len: {int} time: {float}"},
          {"nova.metadata.wsgi.server [req-{uuid} - - - - -] {ip},{ip} "
           "\"GET /latest/meta-data/instance-id HTTP/1.1\" status: 200 "
           "len: {int} time: {float}"},
          {"nova.compute.manager [req-{uuid} {hex:32} {hex:32} - - -] "
           "[instance: {uuid}] Took {float} seconds to build instance."},
          {"nova.scheduler.client.report [req-{uuid} {hex:32} {hex:32} - - "
           "-] Deleted allocation for instance {uuid}"},
      },
      1.0};
}

DatasetSpec bgl() {
  return {
      "BGL",
      "- {ts_epoch} {ts_bgl} R{int:0-77}-M{int:0-1}-N{int:0-15}-C:J{int:"
      "10-17}-U{int:0-11} {ts_bgl} RAS KERNEL ",
      {
          {"INFO instruction cache parity error corrected"},
          {"INFO generating core.{int:1-9999}"},
          {"INFO CE sym {int:0-40}, at 0x{hex:8}, mask 0x{hex:2}"},
          {"INFO total of {int:1-99} ddr error(s) detected and corrected"
           "{opt: over 0 seconds}"},
          {"INFO ddr: excessive soft failures, consider replacing the card"},
          {"FATAL data TLB error interrupt"},
          {"FATAL machine check interrupt"},
          {"INFO shutdown complete"},
          {"FATAL kernel panic"},
          {"INFO ciod: Message code {int:0-99} is not {int:0-99} or "
           "{int:100-999}"},
          {"FATAL ciod: failed to read message prefix on control stream "
           "(CioStream socket to {ip}:{port}"},
          {"INFO ciod: generated {int:1-999} core files for program "
           "{path}"},
          {"FATAL rts: kernel terminated for reason {int:1000-1099}rts: bad "
           "message header: expecting type {int:1-99} but got {int:100-999}"},
          {"INFO mmcs_db_server has been restarted"},
          {"FATAL L3 major internal error"},
          {"INFO {int:1-128} L3 EDRAM error(s) (dcr 0x{hex:4}) detected "
           "and corrected over {int:1-999} seconds"},
          {"FATAL rts panic! - stopping execution"},
          {"INFO program interrupt: fp cr field 0x{hex:1}"},
          {"INFO ciodb has been restarted"},
          {"INFO idoproxydb has been started: $Name: V1R2M1 $ Input "
           "parameters: -enableflush -loguserinfo db.properties BlueGene1"},
          {"INFO Starting SystemController UNKNOWN_LOCATION"},
          {"INFO Waiting for gload to complete"},
          {"FATAL ciod: Error loading {path}: invalid or missing program "
           "image, No such file or directory"},
          {"FATAL ciod: Error loading {path}: program image too big, "
           "{int} > {int}"},
          {"FATAL ciod: failed to read message prefix on control stream "
           "(CioStream socket to {ip}:{port}"},
          {"INFO {int:1-999} double-hummer alignment exceptions"},
          {"FATAL external input interrupt (unit=0x{hex:2} bit=0x{hex:2}): "
           "uncorrectable torus error"},
          {"INFO ciod: LOGIN chdir({path}) failed: No such file or "
           "directory"},
          {"FATAL ciod: cpu {int:0-3} at treeaddr {int:1-999} sent unknown "
           "message type {int:0-255}"},
          {"INFO ciod: Received signal {int:1-31}, code {int:0-255}"},
          {"FATAL machine check: i-fetch unit error"},
          {"INFO lustre: setting fail_loc 0x{hex:8}"},
          {"FATAL ddr: Unable to steer rank {int:0-7}, symbol {int:0-71} - "
           "rank is already steering symbol {int:0-71}"},
      },
      1.15};
}

DatasetSpec hpc() {
  return {
      "HPC",
      "{int:100000-999999} node-{int:0-1023} unix.hw state_change.",
      {
          {"unavailable {ts_epoch} {int:1-9999} Component State Change: "
           "Component \\042alt{int:0-31}\\042 is in the unavailable state "
           "(HWID={int:1000-9999})"},
          {"available {ts_epoch} {int:1-9999} Component State Change: "
           "Component \\042alt{int:0-31}\\042 is in the available state "
           "(HWID={int:1000-9999})"},
          {"failure {ts_epoch} {int:1-9999} Fan speeds ( {intlist:4-7} )"},
          {"running {ts_epoch} {int:1-9999} risBoot command from {alnum} "
           "to node-{int:0-1023}"},
          {"down {ts_epoch} {int:1-9999} Link error on broadcast tree "
           "Interconnect-{hex:4}:{int:0-63}:{int:0-7}"},
          {"halt {ts_epoch} {int:1-9999} ServerFileSystem domain storage"
           "{int:0-99} has an inconsistent file system"},
          {"boot {ts_epoch} {int:1-9999} Targeting domains:node-D{int:0-9} "
           "and nodes:node-{int:0-1023} child of command {int:1-9999}"},
          {"down {ts_epoch} {int:1-9999} PSU status ( on off ) voltage "
           "{float} exceeds limit"},
          {"warning {ts_epoch} {int:1-9999} Temperature ({int:40-99}) "
           "exceeds warning threshold on node-{int:0-1023}"},
          {"down {ts_epoch} {int:1-9999} PSU status ( {oneof:on|off} "
           "{oneof:on|off} )"},
          {"down {ts_epoch} {int:1-9999} inconsistent nodesets "
           "node-{int:0-1023} 0x{hex:8}"},
      },
      1.05};
}

DatasetSpec thunderbird() {
  return {
      "Thunderbird",
      "- {ts_epoch} {ts_iso} {alnum:5} {ts_syslog} {alnum:5}/{alnum:5} ",
      {
          {"sshd[{pid}]: pam_unix(sshd:session): session opened for user "
           "{user} by (uid={int:0-1000})"},
          {"sshd[{pid}]: pam_unix(sshd:session): session closed for user "
           "{user}"},
          {"kernel: scsi({int:0-9}): Waiting for LIP to complete..."},
          {"pbs_mom: Connection refused (111) in open_demux, open_demux: "
           "connect {ip}:{port}"},
          {"sshd[{pid}]: Accepted publickey for {user} from ::ffff:{ip} "
           "port {port} ssh2"},
          {"crond[{pid}]: (root) CMD (run-parts /etc/cron.hourly)"},
          {"kernel: ACPI: Processor [CPU{int:0-7}] (supports 8 throttling "
           "states)"},
          {"ntpd[{pid}]: synchronized to {ip}, stratum {int:1-9}"},
          {"kernel: Losing some ticks... checking if CPU frequency "
           "changed."},
          {"xinetd[{pid}]: START: auth pid={pid} from=::ffff:{ip}"},
          {"postfix/smtpd[{pid}]: connect from {host}[{ip}]"},
          {"in.tftpd[{pid}]: RRQ from {ip} filename {path}"},
          {"kernel: e1000: eth{int:0-3}: e1000_watchdog_task: NIC Link is "
           "Up 1000 Mbps Full Duplex"},
          {"gmond[{pid}]: Error 1 sending message to {ip}"},
          {"dhcpd: DHCPDISCOVER from {mac} via eth{int:0-1}"},
          {"dhcpd: DHCPOFFER on {ip} to {mac} via eth{int:0-1}"},
          {"named[{pid}]: lame server resolving '{host}' (in '{word}.org'?): "
           "{ip}#53"},
          {"sendmail[{pid}]: {alnum:14}: from=<{email}>, size={int}, "
           "class=0, nrcpts={int:1-9}, proto=ESMTP, daemon=MTA, "
           "relay={host} [{ip}]"},
          {"kernel: program {word} is using a deprecated SCSI ioctl, "
           "please convert it to SG_IO"},
          {"kernel: drm: registered panic notifier"},
          {"ntpd[{pid}]: kernel time sync enabled {int:1000-9999}"},
          {"sshd[{pid}]: error: PAM: Authentication failure for {user} "
           "from {host}"},
          {"automount[{pid}]: expired {path}"},
          {"pbs_mom: scan_for_terminated: job {int}.{host} task {int:1-99} "
           "terminated"},
      },
      1.1};
}

DatasetSpec windows() {
  return {
      "Windows",
      "{ts_windows}, Info                  CBS    ",
      {
          {"Loaded Servicing Stack v6.1.7601.{int} with Core: {path}\\"
           "cbscore.dll"},
          {"Ending TrustedInstaller initialization."},
          {"Starting TrustedInstaller finalization."},
          {"Ending TrustedInstaller finalization."},
          {"SQM: Initializing online with Windows opt-in: False"},
          {"SQM: Cleaning up report files older than {int:5-30} days."},
          {"SQM: Requesting upload of all unsent reports."},
          {"SQM: Failed to start upload with file pattern: "
           "C:\\Windows\\servicing\\sqm\\*_std.sqm, flags: 0x{hex:1} "
           "[HRESULT = 0x{hex:8} - E_FAIL]"},
          {"No startup processing required, TrustedInstaller service was "
           "not set as autostart, or else a reboot is still pending."},
          {"NonStart: Checking to ensure startup processing was not "
           "required."},
          {"Startup processing thread terminated normally"},
          {"TI: --- Initializing Trusted Installer ---"},
          {"TI: Last boot time: {ts_iso}.{int}"},
          {"Starting the TrustedInstaller main loop."},
          {"TrustedInstaller service starts successfully."},
          {"Read out cached package applicability for package: "
           "Package_for_KB{int}~31bf3856ad364e35~amd64~~6.1.{int:1-9}.{int:"
           "1-9}, ApplicableState: {int:0-112}, CurrentState:{int:0-112}"},
          {"Session: {int}_{int} initialized by client WindowsUpdateAgent."},
          {"Config flushed to disk"},
          {"Expecting attribute name [HRESULT = 0x{hex:8} - "
           "CBS_E_MANIFEST_INVALID_ITEM]"},
          {"Failed to get next element [HRESULT = 0x{hex:8} - "
           "CBS_E_MANIFEST_INVALID_ITEM]"},
          {"Loading offline registry hive: SOFTWARE, into registry key "
           "'{{bf1a281b-ad7b-4476-ac95-f47682990ce7}}C:/Users/sqm/working/"
           "{int}/Windows/System32/config/SOFTWARE' from path "
           "'C:/Users/sqm/working/{int}/Windows/System32/config/SOFTWARE'."},
          {"Warning: Unrecognized packageExtended attribute."},
          {"Performing {int:1-99} operations; {int:1-99} are not lock/"
           "unlock and follow the lock precedence"},
      },
      1.05};
}

DatasetSpec linux() {
  return {
      "Linux",
      "{ts_syslog} combo ",
      {
          // Several near-identical authentication templates that differ
          // only in variable positions — the documented reason Linux sits
          // around 0.70 for every parser in [11].
          {"sshd(pam_unix)[{pid}]: authentication failure; logname= uid=0 "
           "euid=0 tty=NODEVssh ruser= rhost={host} {opt:uid=0 } user=root"},
          {"sshd(pam_unix)[{pid}]: authentication failure; logname= uid=0 "
           "euid=0 tty=NODEVssh ruser= rhost={ip}"},
          {"sshd(pam_unix)[{pid}]: check pass; user unknown"},
          {"sshd(pam_unix)[{pid}]: session opened for user {user} by "
           "(uid={int:0-1000})"},
          {"sshd(pam_unix)[{pid}]: session closed for user {user}"},
          {"su(pam_unix)[{pid}]: session opened for user {oneof:news|cyrus|mail} "
           "by (uid={int:0-1000})"},
          {"su(pam_unix)[{pid}]: session closed for user {word}"},
          {"ftpd[{pid}]: connection from {ip} () at {ts_apache}"},
          {"ftpd[{pid}]: connection from {ip} ({host}) at {ts_apache}"},
          {"kernel: audit(111{int}.{int:100-999}:{int:0-9}): initialized"},
          {"kernel: Installing knfsd (copyright (C) 1996 okir@monad.swb."
           "de)."},
          {"kernel: klogd 1.4.1, log source = /proc/kmsg started."},
          {"syslogd 1.4.1: restart."},
          {"cups: cupsd shutdown succeeded"},
          {"logrotate: ALERT exited abnormally with [{int:1-2}]"},
          {"gpm[{pid}]: *** info [mice.c({int:100-999})]: imps2: "
           "Auto-detected intellimouse PS/2"},
          {"kernel: usb {int:1-9}-{int:1-9}: new high speed USB device "
           "using ehci_hcd and address {int:1-99}"},
          {"kernel: EXT3-fs: mounted filesystem with ordered data mode."},
          {"kernel: CPU {int:0-7}: Thermal monitoring enabled"},
          {"sshd(pam_unix)[{pid}]: 2 more authentication failures; "
           "logname= uid=0 euid=0 tty=NODEVssh ruser= rhost={host}  "
           "user=root"},
          {"xinetd[{pid}]: START: sgi_fam pid={pid} from={ip}"},
          {"crond(pam_unix)[{pid}]: session opened for user root by "
           "(uid={int:0-1000})"},
          {"crond(pam_unix)[{pid}]: session closed for user root"},
          {"kernel: pci_hotplug: PCI Hot Plug PCI Core version: "
           "{int:0-9}.{int:0-9}"},
      },
      1.05};
}

DatasetSpec mac() {
  return {
      "Mac",
      "{ts_syslog} authorMacBook-Pro ",
      {
          {"kernel[0]: ARPT: {float}: wl0: MDNS: IPV6 Addr: {ipv6}"},
          {"kernel[0]: ARPT: {float}: wl0: MDNS: IPV4 Addr: {ip}"},
          {"kernel[0]: ARPT: {float}: AirPort_Brcm43xx::syncPowerState: "
           "WWEN[enabled]"},
          {"kernel[0]: AppleCamIn::{oneof:systemWakeCall|handleWakeEvent} - "
           "messageType = 0x{hex:8}"},
          {"kernel[0]: RTC: PowerByCalendarDate setting ignored"},
          {"corecaptured[{pid}]: CCFile::captureLogRun Skipping current "
           "file Dir file [{ts_iso}.{int:100-999}]-AirPortBrcm4360_Logs-"
           "{int:0-99}.txt, Current File [{ts_iso}.{int:100-999}]-"
           "AirPortBrcm4360_Logs-{int:0-99}.txt"},
          {"QQ[{pid}]: FA||Url||taskID[{int}] dealloc"},
          {"Microsoft Word[{pid}]: CGSTrackingRegionSetIsEnabled: Invalid "
           "tracking region index: {int:0-99}"},
          {"com.apple.xpc.launchd[1] (com.apple.xpc.launchd.domain.pid."
           "WebContent.{pid}): Path not allowed in target domain: type = "
           "pid, path = {path} error = 147: The specified service did not "
           "ship in the requestor's bundle, origin = {path}"},
          {"WindowServer[{pid}]: CGXDisplayDidWakeNotification [{int}]: "
           "posting kCGSDisplayDidWake"},
          {"kernel[0]: Wake reason: RTC (Alarm)"},
          {"kernel[0]: Previous sleep cause: {int:0-9}"},
          {"sharingd[{pid}]: {int:10-59}.{int:100-999} : SDStatusMonitor::"
           "kStatusWifiPowerChanged"},
          {"kernel[0]: PM response took {int} ms (54, powerd)"},
          {"symptomsd[{pid}]: __73-[NetworkAnalyticsEngine "
           "observeValueForKeyPath:ofObject:change:context:]_block_invoke "
           "unexpected switch value {int:1-9}"},
          {"secd[{pid}]:  securityd_xpc_dictionary_handler EscrowSecurityAl"
           "[{int}] DeviceInCircle Device failed to enter circle"},
          {"UserEventAgent[{pid}]: Captive: CNPluginHandler en{int:0-1}: "
           "Inactive"},
          {"mDNSResponder[{pid}]: mDNS_DeregisterInterface: Frequent "
           "transitions for interface en{int:0-1} ({ip})"},
          {"kernel[0]: AirPort: Link Down on awdl0. Reason 1 "
           "(Unspecified)."},
          {"kernel[0]: IO80211AWDLPeerManager::setAwdlOperatingMode Setting "
           "the AWDL operation mode from AUTO to SUSPENDED"},
          {"networkd[{pid}]: nw_interface_add_to_generation_array "
           "[Generation {int}] adding interface en{int:0-1}"},
          {"com.apple.cts[{pid}]: com.apple.suggestions.harvest: scheduler_"
           "evaluate_activity told me to run this job; however, but the "
           "start time isn't for {int} seconds. Ignoring."},
      },
      1.05};
}

DatasetSpec android() {
  return {
      "Android",
      "{ts_android} {int:1000-9999} {int:1000-9999} ",
      {
          {"D PowerManagerService: acquireWakeLockInternal: lock=1{int}, "
           "flags=0x{hex:1}, tag=\"RILJ_ACK_WL\", ws=null, uid={int:1000-"
           "9999}, pid={pid}"},
          {"D PowerManagerService: ready=true,policy={int:1-3},wakefulness="
           "{int:0-2},wksummary=0x{hex:2},uasummary=0x{hex:1},bootcompleted="
           "true,boostinprogress=false,waitmodeenable=false,mode=false,manual"
           "={int:10-99},auto=-1,adj={float}userId={int:0-99}"},
          {"I ActivityManager: START u0 cmp={word}.android/.{word}"
           "Activity from uid {int:1000-99999} pid {pid} "
           "{oneof:focused|unfocused}"},
          {"D AlarmManager: Kernel timezone updated to {int:0-720} "
           "minutes west of GMT"},
          {"D WificondControl: Scan {opt:single }result ready event"},
          {"V WindowManager: Relayout Window(v0x{hex:7} u0 com.android."
           "systemui/com.android.systemui.{word}): viewVisibility=0 req="
           "{int:100-3000}x{int:100-3000} WM.LayoutParams"},
          {"I PowerManager_screenOn: DisplayPowerStatesetColorFadeLevel: "
           "level={float}"},
          {"D BatteryService: level:{int:0-100}, scale:100, status:{int:1-"
           "5}, health:2, present:true, voltage: {int:3500-4400}, "
           "temperature: {int:200-450}"},
          {"E memtrack: Couldn't load memtrack module"},
          {"W system_server: Long monitor contention with owner Binder:"
           "{pid}_{int:1-9} ({pid}) at void com.android.server.am."
           "ActivityManagerService${word}.run()(ActivityManagerService.java:"
           "{int:1000-30000}) waiters={int:0-9} in void com.android.server."
           "am.ActivityManagerService.onWakefulnessChanged(int) for {float}s"},
          {"I chatty: uid={int:1000-9999}({word}) expire {int:1-99} lines"},
          {"D audio_hw_primary: disable_audio_route: reset and update mixer "
           "path: low-latency-playback"},
          {"D SensorService: SensorDevice::activating sensor handle={int:0-"
           "99} name={word}"},
          {"I ThermalEngine: Sensor:batt_therm:{int:20000-45000} mC"},
          {"D DisplayPowerController: updatePowerState mPendingRequestLocked"
           "=policy={int:1-3}, useProximitySensor=false, screenBrightness="
           "{int:1-255}"},
          {"W InputReader: Device has associated, but no associated display "
           "id."},
          {"E QC-time-services: Daemon: ats_rtc_diff cannot be read. "
           "Initialize to zero"},
          {"V KeyguardStatusView: refresh statusview showing:true"},
      },
      1.05};
}

DatasetSpec healthapp() {
  return {
      "HealthApp",
      "{ts_healthapp}|",
      {
          {"Step_LSC|{int:30000000-39999999}|onStandStepChanged {int}"},
          {"Step_LSC|{int:30000000-39999999}|onExtend:{int} {int:100-199} "
           "{int:100-199} {int}"},
          {"Step_SPUtils|{int:30000000-39999999}|setTodayTotalDetailSteps = "
           "{int}##{int:0-9}##{int}##{int}##{int}##{int}"},
          {"Step_StandReportReceiver|{int:30000000-39999999}|REPORT : {int} "
           "{int:0-99} {int} {int}"},
          {"Step_ExtSDM|{int:30000000-39999999}|calculateCaloriesWithCache "
           "totalCalories={int}"},
          {"Step_ExtSDM|{int:30000000-39999999}|calculateAltitudeWithCache "
           "totalAltitude={int:0-999}"},
          {"Step_SPUtils|{int:30000000-39999999}|getTodayTotalDetailSteps = "
           "{int}##{int:0-9}##{int}##{int}##{int}##{int}"},
          {"HiH_HiHealthDataSdk|{int:30000000-39999999}|aggregateData() "
           "sessionId={int:0-999}"},
          {"Step_PDMUtil|{int:30000000-39999999}|OnDataResult success "
           "errorCode = {int:0-9} count = {int:0-999}"},
          {"Step_StandStepCounter|{int:30000000-39999999}|flush sensor "
           "data"},
      },
      1.1};
}

DatasetSpec apache() {
  return {
      "Apache",
      "[{ts_apache}] ",
      {
          {"[notice] jk2_init() Found child {pid} in scoreboard slot "
           "{int:0-99}"},
          {"[notice] workerEnv.init() ok /etc/httpd/conf/workers2."
           "properties"},
          {"[error] mod_jk child workerEnv in error state {int:1-9}"},
          {"[error] [client {ip}] Directory index forbidden by rule: "
           "/var/www/html/"},
          {"[error] jk2_init() Can't find child {pid} in scoreboard"},
          {"[error] mod_jk child init {int:1-3} -{int:0-2}"},
      },
      1.0};
}

DatasetSpec openssh() {
  return {
      "OpenSSH",
      "{ts_syslog} LabSZ sshd[{pid}]: ",
      {
          {"Failed password for invalid user {word} from {ip} port {port} "
           "ssh2"},
          {"Failed password for root from {ip} port {port} ssh2"},
          {"pam_unix(sshd:auth): authentication failure; logname= uid=0 "
           "euid=0 tty=ssh ruser= rhost={ip}  user=root"},
          {"pam_unix(sshd:auth): authentication failure; logname= uid=0 "
           "euid=0 tty=ssh ruser= rhost={ip}"},
          {"Received disconnect from {ip}: 11: Bye Bye [preauth]"},
          {"Received disconnect from {ip}: 11: disconnected by user"},
          {"Invalid user {word} from {ip}"},
          {"input_userauth_request: invalid user {word} [preauth]"},
          {"Connection closed by {ip} [preauth]"},
          {"reverse mapping checking getaddrinfo for {host} [{ip}] failed "
           "- POSSIBLE BREAK-IN ATTEMPT!"},
          {"Accepted password for {word} from {ip} port {port} ssh2"},
          {"pam_unix(sshd:session): session opened for user {word} by "
           "(uid={int:0-1000})"},
          {"error: Received disconnect from {ip}: 3: com.jcraft.jsch."
           "JSchException: Auth fail [preauth]"},
          {"Did not receive identification string from {ip}"},
          {"PAM service(sshd) ignoring max retries; {int:4-9} > 3"},
          {"Disconnecting: Too many authentication failures for admin "
           "[preauth]"},
          {"PAM {int:1-5} more authentication failures; logname= uid=0 "
           "euid=0 tty=ssh ruser= rhost={ip}  user=root"},
          {"message repeated {int:2-9} times: [ Failed password for root "
           "from {ip} port {port} ssh2]"},
          {"fatal: Read from socket failed: Connection reset by peer "
           "[preauth]"},
          {"error: connect_to {ip} port {port}: failed."},
      },
      1.1};
}

DatasetSpec proxifier() {
  return {
      "Proxifier",
      "[{ts_proxifier}] ",
      {
          // The {intstar} fields reproduce the alphanumeric/integer
          // alternation that yields "two patterns created for one event,
          // rendering nearly 50% of the results invalid" on raw logs.
          {"chrome.exe - proxy.cse.cuhk.edu.hk:{port} open {opt:again }through "
           "proxy proxy.cse.cuhk.edu.hk:5070 HTTPS"},
          {"chrome.exe - proxy.cse.cuhk.edu.hk:{port} close, {intstar} "
           "bytes sent, {intstar} bytes received, lifetime {dur:colon}"},
          {"chrome.exe *64 - proxy.cse.cuhk.edu.hk:{port} open through "
           "proxy proxy.cse.cuhk.edu.hk:5070 HTTPS"},
          {"chrome.exe *64 - proxy.cse.cuhk.edu.hk:{port} close, {intstar} "
           "bytes sent, {intstar} bytes received, lifetime {dur:colon}"},
          {"{word}.exe - {host}:{port} error : Could not connect through "
           "proxy proxy.cse.cuhk.edu.hk:5070 - Proxy server cannot "
           "establish a connection with the target, status code {int:400-"
           "599}"},
          {"{word}.exe - {host}:{port} open directly"},
          {"{word}.exe - {host}:{port} close, {intstar} bytes sent, "
           "{intstar} bytes received, lifetime {dur:colon}"},
          {"proxy.cse.cuhk.edu.hk:{port} HTTPS"},
      },
      1.0};
}

}  // namespace

const std::vector<DatasetSpec>& loghub_datasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      hdfs(),     hadoop(),      spark(),   zookeeper(),
      openstack(), bgl(),        hpc(),     thunderbird(),
      windows(),  linux(),       mac(),     android(),
      healthapp(), apache(),     openssh(), proxifier(),
  };
  return kDatasets;
}

const DatasetSpec* find_dataset(std::string_view name) {
  for (const DatasetSpec& spec : loghub_datasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

eval::LabeledCorpus generate_corpus(const DatasetSpec& spec, std::size_t n,
                                    std::uint64_t seed) {
  eval::LabeledCorpus corpus;
  corpus.name = spec.name;
  corpus.messages.reserve(n);
  corpus.preprocessed.reserve(n);
  corpus.event_ids.reserve(n);

  GenContext ctx{util::Rng(seed)};
  const util::ZipfSampler zipf(spec.events.size(), spec.zipf_s);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t event = zipf.sample(ctx.rng);
    std::string raw;
    std::string pre;
    // Header renders only into the raw variant: the logparser benchmark
    // strips headers before handing content to the algorithms.
    expand_template(spec.header, ctx, &raw, nullptr);
    expand_template(spec.events[event].format, ctx, &raw, &pre);
    corpus.messages.push_back(std::move(raw));
    corpus.preprocessed.push_back(std::move(pre));
    corpus.event_ids.push_back("E" + std::to_string(event + 1));
    ctx.clock += ctx.rng.uniform(0, 3);
  }
  return corpus;
}

}  // namespace seqrtg::loggen
