# Empty compiler generated dependencies file for exporter_sweep_test.
# This may be replaced when dependencies are built.
